package service

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"rms/internal/budget"
	"rms/internal/telemetry"
)

// Job lifecycle states.
const (
	JobQueued   = "queued"
	JobRunning  = "running"
	JobDone     = "done"
	JobFailed   = "failed"
	JobCanceled = "canceled" // budget trip or shutdown; resumable when a checkpoint exists
)

// ErrBusy reports a full admission queue — HTTP 429 with Retry-After.
var ErrBusy = errors.New("service: job queue full")

// ErrShuttingDown reports a draining server — HTTP 503.
var ErrShuttingDown = errors.New("service: shutting down")

// Job is one queued unit of work. Each job gets its own budget
// (cancelled on shutdown) and its own flight recorder, which the
// /v1/jobs/{id}/events endpoint streams as ndjson.
type Job struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`

	mu     sync.Mutex
	status string
	errMsg string
	result any

	run  func(j *Job) (any, error)
	bud  *budget.Budget
	rec  *telemetry.Recorder
	log  *telemetry.Logger
	done chan struct{}
}

// JobView is the JSON snapshot of a job.
type JobView struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
	Result any    `json:"result,omitempty"`
	// Events is the total event count in the job's flight recorder —
	// the cursor bound for /v1/jobs/{id}/events?after=N.
	Events uint64 `json:"events"`
}

// View snapshots the job for JSON rendering.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobView{
		ID: j.ID, Kind: j.Kind, Status: j.status,
		Error: j.errMsg, Result: j.result,
		Events: j.rec.Total(),
	}
}

// Done returns the completion channel (closed when the job reaches a
// terminal state).
func (j *Job) Done() <-chan struct{} { return j.done }

// Budget returns the job's budget (for cancellation).
func (j *Job) Budget() *budget.Budget { return j.bud }

// Recorder returns the job's flight recorder (for event streaming).
func (j *Job) Recorder() *telemetry.Recorder { return j.rec }

// Log returns the job's logger, feeding its recorder.
func (j *Job) Log() *telemetry.Logger { return j.log }

func (j *Job) setStatus(s string) {
	j.mu.Lock()
	j.status = s
	j.mu.Unlock()
}

// terminal reports whether the job has finished.
func (j *Job) terminal() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// Queue is the bounded admission queue: Submit either enqueues (jobs
// wait for one of the worker goroutines) or refuses immediately with
// ErrBusy / ErrShuttingDown. Completed jobs stay addressable for
// result polling.
type Queue struct {
	mu      sync.Mutex
	jobs    map[string]*Job
	seq     int
	closing bool

	// parent, when non-nil, is the server-wide budget every job budget
	// hangs under: cancelling it trips all jobs at once.
	parent *budget.Budget

	ch chan *Job
	wg sync.WaitGroup
}

// NewQueue starts workers goroutines draining a capacity-bounded
// admission queue.
func NewQueue(capacity, workers int) *Queue {
	if capacity <= 0 {
		capacity = 16
	}
	if workers <= 0 {
		workers = 2
	}
	q := &Queue{
		jobs: make(map[string]*Job),
		ch:   make(chan *Job, capacity),
	}
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// Submit admits one job. kind tags the job; deadline (0 = none) bounds
// its budget; run does the work on a worker goroutine, logging into
// the job's recorder. Returns ErrBusy when the queue is full and
// ErrShuttingDown once Shutdown has begun.
func (q *Queue) Submit(kind string, deadline time.Duration, run func(j *Job) (any, error)) (*Job, error) {
	rec := telemetry.NewRecorder(0)
	log := telemetry.NewLogger(rec)
	j := &Job{
		Kind: kind, status: JobQueued, run: run,
		bud:  budget.New().WithLogger(log.Scope("budget")).WithParent(q.parent),
		rec:  rec, log: log,
		done: make(chan struct{}),
	}
	if deadline > 0 {
		j.bud = j.bud.WithDeadline(deadline)
	}

	q.mu.Lock()
	if q.closing {
		q.mu.Unlock()
		return nil, ErrShuttingDown
	}
	q.seq++
	j.ID = fmt.Sprintf("job-%d", q.seq)
	select {
	case q.ch <- j:
		q.jobs[j.ID] = j
		q.mu.Unlock()
		return j, nil
	default:
		q.seq-- // the job never existed
		q.mu.Unlock()
		return nil, ErrBusy
	}
}

// Job returns a job by ID.
func (q *Queue) Job(id string) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	return j, ok
}

// Jobs lists the current job views, newest first.
func (q *Queue) Jobs() []JobView {
	q.mu.Lock()
	all := make([]*Job, 0, len(q.jobs))
	for _, j := range q.jobs {
		all = append(all, j)
	}
	q.mu.Unlock()
	views := make([]JobView, len(all))
	for i, j := range all {
		views[i] = j.View()
	}
	// Job IDs are "job-N"; sort by the numeric suffix, newest first.
	for i := 0; i < len(views); i++ {
		for k := i + 1; k < len(views); k++ {
			if jobSeq(views[k].ID) > jobSeq(views[i].ID) {
				views[i], views[k] = views[k], views[i]
			}
		}
	}
	return views
}

func jobSeq(id string) int {
	var n int
	fmt.Sscanf(id, "job-%d", &n)
	return n
}

func (q *Queue) worker() {
	defer q.wg.Done()
	for j := range q.ch {
		j.setStatus(JobRunning)
		j.log.Info("job", "job started", "id", j.ID, "kind", j.Kind)
		res, err := j.run(j)
		j.mu.Lock()
		j.result = res
		switch {
		case err == nil:
			j.status = JobDone
		case budget.Exhausted(err):
			j.status = JobCanceled
			j.errMsg = err.Error()
		default:
			j.status = JobFailed
			j.errMsg = err.Error()
		}
		st := j.status
		j.mu.Unlock()
		j.log.Info("job", "job finished", "id", j.ID, "status", st)
		j.bud.Cancel("job finished")
		close(j.done)
	}
}

// Shutdown stops admission immediately (Submit returns
// ErrShuttingDown), then drains: queued and running jobs get up to
// drain to finish on their own; past the deadline every unfinished
// job's budget is cancelled and the workers are awaited — solvers and
// optimizers stop at their next cooperative check, fit jobs leaving a
// resumable checkpoint. Returns true when everything drained inside
// the deadline.
func (q *Queue) Shutdown(drain time.Duration) bool {
	q.mu.Lock()
	if q.closing {
		q.mu.Unlock()
		return true
	}
	q.closing = true
	q.mu.Unlock()
	close(q.ch)

	drained := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(drained)
	}()
	if drain > 0 {
		t := time.NewTimer(drain)
		defer t.Stop()
		select {
		case <-drained:
			return true
		case <-t.C:
		}
	}
	q.mu.Lock()
	for _, j := range q.jobs {
		if !j.terminal() {
			j.bud.Cancel("server shutting down")
		}
	}
	q.mu.Unlock()
	<-drained
	return false
}
