package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// fuzzServer lazily builds one shared Server for the whole fuzz
// process; requests run synchronously (wait=1) so the queue never
// backs up.
var (
	fuzzOnce sync.Once
	fuzzURL  string
)

func fuzzServerURL() string {
	fuzzOnce.Do(func() {
		srv := New(Config{QueueCap: 64, Workers: 2})
		ts := httptest.NewServer(srv.Handler())
		fuzzURL = ts.URL
		// The process owns ts for its lifetime; fuzz workers are
		// separate processes, each with its own instance.
	})
	return fuzzURL
}

// rdlSeedCorpus pulls the RDL parser's fuzz corpus in as model sources
// so the service fuzzer starts from inputs that reach deep into the
// compile path.
func rdlSeedCorpus(f *testing.F) []string {
	f.Helper()
	dir := filepath.Join("..", "rdl", "testdata", "fuzz", "FuzzParseRDL")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Logf("no RDL corpus at %s: %v", dir, err)
		return nil
	}
	var srcs []string
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		// Corpus format: "go test fuzz v1" then one string(...) line.
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "string(") || !strings.HasSuffix(line, ")") {
				continue
			}
			if s, err := strconv.Unquote(line[len("string(") : len(line)-1]); err == nil {
				srcs = append(srcs, s)
			}
		}
	}
	return srcs
}

// FuzzServiceRequest throws arbitrary JSON bodies at the service API.
// The contract under fuzz: the server never panics, never hangs, and
// always answers a documented status with a JSON body — malformed
// input is the client's 4xx or a failed job, never a 5xx or a crash.
func FuzzServiceRequest(f *testing.F) {
	// Structured seeds: one per request shape the API accepts.
	f.Add(`{"kind": "rdl", "source": "species A = \"[CH4:1]\" init 1.0", "optimize": "full"}`)
	f.Add(`{"kind": "net", "source": "species A 1\nspecies B 0\nreaction 1 A -> 1 B k1"}`)
	f.Add(`{"kind": "vulcan", "variants": 9}`)
	f.Add(`{"spec": {"kind": "rdl", "source": "x"}, "tend": 1, "points": 5, "solver": "adams-gear"}`)
	f.Add(`{"model": "deadbeef", "tend": 0.5, "points": 3, "rates": {"K_d": 2}, "sparse": true}`)
	f.Add(`{"spec": {"kind": "rdl", "source": ""}, "data": [{"name": "d", "t": [0.1], "v": [1]}], ` +
		`"property": "sum", "maxiter": 2, "start": [1], "lower": [0.5], "upper": [2]}`)
	f.Add(`{"tend": "soon"}`)
	f.Add(`{`)
	f.Add(``)
	f.Add(`[{"kind": "rdl"}]`)
	// RDL corpus seeds, wrapped the way a client would ship them.
	for _, src := range rdlSeedCorpus(f) {
		body, err := json.Marshal(ModelSpec{Kind: KindRDL, Source: src})
		if err != nil {
			continue
		}
		f.Add(string(body))
	}

	client := &http.Client{Timeout: 30 * time.Second}
	f.Fuzz(func(t *testing.T, body string) {
		base := fuzzServerURL()
		paths := []string{"/v1/models"}
		// Only forward bounded work to the job endpoints: a mutated
		// body with points=1e9 or maxiter=1e6 is legal input whose
		// honest handling takes unbounded time, which a fuzzer cannot
		// wait out. The decode surface is identical on /v1/models.
		var probe struct {
			Points  float64 `json:"points"`
			TEnd    float64 `json:"tend"`
			MaxIter float64 `json:"maxiter"`
		}
		if err := json.Unmarshal([]byte(body), &probe); err == nil &&
			probe.Points <= 64 && probe.TEnd <= 1e3 && probe.MaxIter <= 8 {
			paths = append(paths, "/v1/simulate", "/v1/fit", "/v1/verify")
		}
		for _, path := range paths {
			resp, err := client.Post(base+path+"?wait=1", "application/json",
				bytes.NewReader([]byte(body)))
			if err != nil {
				t.Fatalf("POST %s: %v", path, err)
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("read %s: %v", path, err)
			}
			switch resp.StatusCode {
			case http.StatusOK, http.StatusAccepted, http.StatusBadRequest,
				http.StatusTooManyRequests, http.StatusServiceUnavailable:
			default:
				t.Fatalf("POST %s: status %d body %q", path, resp.StatusCode, data)
			}
			if !json.Valid(data) {
				t.Fatalf("POST %s: non-JSON response %q", path, data)
			}
		}
	})
}
