package service

import (
	"fmt"
	"sync"

	"rms/internal/core"
	"rms/internal/linalg"
	"rms/internal/network"
	"rms/internal/telemetry"
	"rms/internal/vulcan"
)

// CompiledModel is one cache entry: every per-model artifact that can
// be shared across requests. The compiled tape and Jacobian programs
// are immutable; requests instantiate private evaluators over them.
// The symbolic LU is shared through SparseLU.Fork — one ordering and
// fill analysis, private numeric storage per solve.
type CompiledModel struct {
	// ID is the content address (ModelSpec.CacheKey).
	ID string
	// Spec is the normalized input that produced the model.
	Spec ModelSpec
	// Res holds the full compilation output.
	Res *core.Result
	// Pattern is the Jacobian sparsity pattern (nil when the model has
	// no compiled Jacobian).
	Pattern *linalg.CSR
	// LU is the one-time symbolic factorization of Pattern, forked per
	// solve (nil when the pattern is unusable for pivot-free LU).
	LU *linalg.SparseLU
}

// ModelInfo is the JSON-facing summary of a compiled model.
type ModelInfo struct {
	ID       string   `json:"id"`
	Cached   bool     `json:"cached"`
	Species  []string `json:"species"`
	Rates    []string `json:"rates"`
	Report   string   `json:"report"`
	Kind     string   `json:"kind"`
	Optimize string   `json:"optimize"`
}

// Info summarizes the model; cached reports whether this request was
// served from the cache.
func (m *CompiledModel) Info(cached bool) ModelInfo {
	return ModelInfo{
		ID: m.ID, Cached: cached,
		Species: m.Res.System.Species, Rates: m.Res.System.Rates,
		Report: m.Res.Report().String(),
		Kind:   m.Spec.Kind, Optimize: m.Spec.Optimize,
	}
}

// flight is one in-progress compilation; latecomers for the same key
// block on done instead of compiling again.
type flight struct {
	done chan struct{}
	cm   *CompiledModel
	err  error
}

// Engine is the compile-once layer: a content-addressed cache of
// compiled models with singleflight deduplication, shared by the CLIs
// and the rmsd server. The zero value is not usable; construct with
// NewEngine. All methods are safe for concurrent use.
type Engine struct {
	mu       sync.Mutex
	models   map[string]*CompiledModel
	inflight map[string]*flight

	hits, misses, compilations *telemetry.Counter
	log                        *telemetry.Logger
}

// NewEngine builds an engine. reg (nil-safe) receives the cache
// counters service.cache_hits, service.cache_misses and
// service.compilations; log (nil-safe) records compile events.
func NewEngine(reg *telemetry.Registry, log *telemetry.Logger) *Engine {
	return &Engine{
		models:       make(map[string]*CompiledModel),
		inflight:     make(map[string]*flight),
		hits:         reg.Counter("service.cache_hits"),
		misses:       reg.Counter("service.cache_misses"),
		compilations: reg.Counter("service.compilations"),
		log:          log.Scope("service"),
	}
}

// Model returns a cached model by ID.
func (e *Engine) Model(id string) (*CompiledModel, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cm, ok := e.models[id]
	return cm, ok
}

// Models returns the number of cached models.
func (e *Engine) Models() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.models)
}

// Compile returns the compiled model for spec, compiling at most once
// per cache key: concurrent calls with the same key coalesce onto one
// compilation (singleflight), later calls hit the cache. cached
// reports whether this call reused an existing or in-flight
// compilation. lane (nil-safe) receives the compiler phase spans of an
// actual compilation; joined and cached calls record nothing.
func (e *Engine) Compile(spec ModelSpec, lane *telemetry.Lane) (cm *CompiledModel, cached bool, err error) {
	if err := spec.normalize(); err != nil {
		return nil, false, err
	}
	key := spec.CacheKey()

	e.mu.Lock()
	if cm, ok := e.models[key]; ok {
		e.mu.Unlock()
		e.hits.Inc()
		return cm, true, nil
	}
	if fl, ok := e.inflight[key]; ok {
		e.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, false, fl.err
		}
		e.hits.Inc()
		return fl.cm, true, nil
	}
	fl := &flight{done: make(chan struct{})}
	e.inflight[key] = fl
	e.mu.Unlock()

	e.misses.Inc()
	fl.cm, fl.err = e.build(spec, key, lane)

	e.mu.Lock()
	delete(e.inflight, key)
	if fl.err == nil {
		e.models[key] = fl.cm
	}
	e.mu.Unlock()
	close(fl.done)

	if fl.err != nil {
		return nil, false, fl.err
	}
	e.compilations.Inc()
	e.log.Info("compile", "model compiled", "id", key[:12], "kind", spec.Kind)
	return fl.cm, false, nil
}

// BuildUncached compiles the spec without consulting or populating the
// cache — the /v1/verify endpoint uses it to cross-check a cached
// model against a fresh compilation.
func (e *Engine) BuildUncached(spec ModelSpec) (*CompiledModel, error) {
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	return e.build(spec, spec.CacheKey(), nil)
}

// build runs the actual compilation for a normalized spec.
func (e *Engine) build(spec ModelSpec, key string, lane *telemetry.Lane) (*CompiledModel, error) {
	o, err := optOptions(spec.Optimize)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{Optimize: o, RCIP: spec.RCIP, AnalyticJacobian: true, Trace: lane}
	var res *core.Result
	switch spec.Kind {
	case KindRDL:
		res, err = core.CompileRDL(spec.Source, cfg)
	case KindNet:
		var net *network.Network
		net, err = network.ParseText(spec.Source)
		if err == nil {
			res, err = core.CompileNetwork(net, cfg)
		}
	case KindVulcan:
		var net *network.Network
		net, err = vulcan.Network(spec.Variants)
		if err == nil {
			res, err = core.CompileNetwork(net, cfg)
		}
	default:
		err = fmt.Errorf("service: unknown model kind %q", spec.Kind)
	}
	if err != nil {
		return nil, err
	}
	cm := &CompiledModel{ID: key, Spec: spec, Res: res}
	if res.Jacobian != nil {
		cm.Pattern = res.Jacobian.PatternCSR()
		// A pattern missing a diagonal entry cannot be factored without
		// pivoting; solvers then fall back to dense LU, so a nil LU is
		// not an error.
		if lu, err := linalg.NewSparseLU(cm.Pattern); err == nil {
			cm.LU = lu
		}
	}
	return cm, nil
}
