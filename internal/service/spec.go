// Package service is the shared simulation/estimation engine behind
// both the rms command-line tools and the rmsd HTTP daemon: one code
// path compiles a model once — content-addressed on its source and
// optimization flags — and serves any number of simulate and fit
// requests from the cached artifact (parsed network, optimized tape,
// Jacobian sparsity pattern and symbolic LU).
//
// The package splits in two layers:
//
//   - Engine (engine.go) owns the compiled-model cache and the
//     singleflight compilation; RunSimulate (simulate.go) and RunFit
//     (fit.go) execute one request against a cached model. The CLIs
//     call this layer directly.
//   - Server (server.go) mounts the /v1 JSON API over a bounded job
//     queue (jobs.go) with per-job budgets, ndjson progress streaming
//     and graceful drain. rmsd is a thin main around it.
package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"

	"rms/internal/opt"
)

// Model spec kinds.
const (
	KindRDL    = "rdl"    // Source is RDL program text
	KindNet    = "net"    // Source is the network text format (internal/network.ParseText)
	KindVulcan = "vulcan" // Variants selects the built-in vulcanization model
)

// ModelSpec describes one compilation input. Two specs with equal
// normalized fields address the same cached model.
type ModelSpec struct {
	// Kind selects the front end: "rdl" (default), "net" or "vulcan".
	Kind string `json:"kind,omitempty"`
	// Source is the program text for the rdl and net kinds.
	Source string `json:"source,omitempty"`
	// RCIP is optional rate-constant information source text; it
	// participates in the cache key because it changes the compiled
	// rate table.
	RCIP string `json:"rcip,omitempty"`
	// Variants sizes the vulcan kind (chain-length variants per family).
	Variants int `json:"variants,omitempty"`
	// Optimize names the optimizer configuration: "full" (default),
	// "paper" or "none".
	Optimize string `json:"optimize,omitempty"`
}

// normalize fills defaults and validates the spec.
func (s *ModelSpec) normalize() error {
	if s.Kind == "" {
		s.Kind = KindRDL
	}
	switch s.Kind {
	case KindRDL, KindNet:
		if s.Source == "" {
			return fmt.Errorf("service: %s spec needs source text", s.Kind)
		}
		if s.Variants != 0 {
			return fmt.Errorf("service: variants is only valid for the vulcan kind")
		}
	case KindVulcan:
		if s.Source != "" {
			return fmt.Errorf("service: vulcan spec takes no source text")
		}
		if s.Variants <= 0 {
			return fmt.Errorf("service: vulcan spec needs variants > 0")
		}
	default:
		return fmt.Errorf("service: unknown model kind %q", s.Kind)
	}
	if s.Optimize == "" {
		s.Optimize = "full"
	}
	if _, err := optOptions(s.Optimize); err != nil {
		return err
	}
	return nil
}

// optOptions resolves an optimizer configuration name.
func optOptions(name string) (opt.Options, error) {
	switch name {
	case "full":
		return opt.Full(), nil
	case "paper":
		return opt.Paper(), nil
	case "none":
		return opt.Options{}, nil
	}
	return opt.Options{}, fmt.Errorf("service: unknown optimize config %q (full|paper|none)", name)
}

// hashField writes one length-prefixed field so adjacent fields cannot
// alias ("ab"+"c" vs "a"+"bc").
func hashField(h hash.Hash, s string) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
	h.Write(n[:])
	h.Write([]byte(s))
}

// CacheKey is the content address of the compiled model: sha256 over
// the normalized kind, source, RCIP text, variant count and optimizer
// configuration. The spec must already be normalized (Engine.Compile
// normalizes before keying).
func (s ModelSpec) CacheKey() string {
	h := sha256.New()
	hashField(h, s.Kind)
	hashField(h, s.Source)
	hashField(h, s.RCIP)
	hashField(h, fmt.Sprintf("variants=%d", s.Variants))
	hashField(h, s.Optimize)
	return hex.EncodeToString(h.Sum(nil))
}
