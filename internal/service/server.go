package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"path/filepath"
	"strconv"
	"time"

	"rms/internal/budget"
	"rms/internal/checkpoint"
	"rms/internal/estimator"
	"rms/internal/introspect"
	"rms/internal/nlopt"
	"rms/internal/telemetry"
)

// maxBodyBytes bounds request bodies (RDL sources and data files are
// text; 8 MiB is generous).
const maxBodyBytes = 8 << 20

// Config shapes a Server. Zero values take the documented defaults.
type Config struct {
	// Program names the server in the introspection index (default
	// "rmsd").
	Program string
	// Engine is the compiled-model cache; nil constructs a fresh one
	// over Registry and Log.
	Engine *Engine
	// QueueCap bounds the admission queue (default 16); Workers the
	// concurrent job executors (default 2).
	QueueCap, Workers int
	// Drain is the graceful-shutdown deadline: how long in-flight jobs
	// may run before their budgets are cancelled (default 5s).
	Drain time.Duration
	// CheckpointDir, when non-empty, receives <job-id>.ckpt resume
	// files for fit jobs — written at every LM iteration boundary, so
	// a drained-past-deadline fit stays resumable.
	CheckpointDir string
	// Registry/Tracer/Recorder/Log are the process-wide instruments
	// (all nil-safe); Recorder and Registry also feed the mounted
	// introspection endpoints.
	Registry *telemetry.Registry
	Tracer   *telemetry.Tracer
	Recorder *telemetry.Recorder
	Log      *telemetry.Logger
	// Budget is the server-wide budget shown by /debug/vars; job
	// budgets are parented under it so cancelling it stops everything.
	Budget *budget.Budget
}

// Server is the rmsd HTTP layer: the /v1 JSON API over the job queue
// and engine, plus the introspection endpoints on the same mux.
type Server struct {
	cfg Config
	eng *Engine
	q   *Queue
	log *telemetry.Logger

	httpSrv *http.Server
	ln      net.Listener
	// pollInterval paces the job event stream (tests shorten it).
	pollInterval time.Duration
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.Program == "" {
		cfg.Program = "rmsd"
	}
	if cfg.Drain == 0 {
		cfg.Drain = 5 * time.Second
	}
	eng := cfg.Engine
	if eng == nil {
		eng = NewEngine(cfg.Registry, cfg.Log)
	}
	q := NewQueue(cfg.QueueCap, cfg.Workers)
	q.parent = cfg.Budget
	return &Server{
		cfg: cfg, eng: eng,
		q:            q,
		log:          cfg.Log.Scope("rmsd"),
		pollInterval: 50 * time.Millisecond,
	}
}

// Engine returns the server's compiled-model cache.
func (s *Server) Engine() *Engine { return s.eng }

// Queue returns the server's job queue.
func (s *Server) Queue() *Queue { return s.q }

// Handler builds the full mux: the /v1 API plus the introspection
// endpoints (/healthz, /metrics, /debug/*, /progress).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/models", s.handleCompile)
	mux.HandleFunc("GET /v1/models/{id}", s.handleModel)
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("POST /v1/fit", s.handleFit)
	mux.HandleFunc("POST /v1/verify", s.handleVerify)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	dbg := &introspect.Server{Program: s.cfg.Program, Registry: s.cfg.Registry,
		Tracer: s.cfg.Tracer, Recorder: s.cfg.Recorder, Budget: s.cfg.Budget}
	dbg.Register(mux)
	return mux
}

// Start listens on addr (host:port; port 0 picks a free one) and
// serves in the background, returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.Handler()}
	go s.httpSrv.Serve(ln)
	return ln.Addr().String(), nil
}

// Shutdown drains gracefully: stop admitting, give in-flight jobs up
// to drain (0 = Config.Drain), cancel stragglers' budgets, then close
// the listener. Returns true when every job finished inside the
// deadline.
func (s *Server) Shutdown(drain time.Duration) bool {
	if drain == 0 {
		drain = s.cfg.Drain
	}
	s.log.Info("shutdown", "draining", "deadline", drain.String())
	ok := s.q.Shutdown(drain)
	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	s.log.Info("shutdown", "drained", "clean", fmt.Sprint(ok))
	return ok
}

// --- plumbing ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

// decode reads a bounded JSON body into v; any syntax or type error is
// the client's (400).
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// submit queues a job and answers: async submits return 202 with a
// Location header; ?wait=1 blocks for the result. A full queue is 429
// with Retry-After, a draining server 503.
func (s *Server) submit(w http.ResponseWriter, r *http.Request, kind string, deadline time.Duration, run func(j *Job) (any, error)) {
	j, err := s.q.Submit(kind, deadline, run)
	switch {
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrShuttingDown):
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if r.URL.Query().Get("wait") != "" {
		<-j.Done()
		writeJSON(w, http.StatusOK, j.View())
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, j.View())
}

// resolve finds the request's model: by ID, or by compiling (or
// cache-hitting) an inline spec.
func (s *Server) resolve(id string, spec *ModelSpec) (*CompiledModel, error) {
	switch {
	case id != "" && spec != nil:
		return nil, fmt.Errorf("service: give either model or spec, not both")
	case id != "":
		cm, ok := s.eng.Model(id)
		if !ok {
			return nil, fmt.Errorf("service: unknown model %q", id)
		}
		return cm, nil
	case spec != nil:
		cm, _, err := s.eng.Compile(*spec, nil)
		return cm, err
	}
	return nil, fmt.Errorf("service: request needs a model id or an inline spec")
}

// --- handlers ---

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var spec ModelSpec
	if !decode(w, r, &spec) {
		return
	}
	s.submit(w, r, "compile", 0, func(j *Job) (any, error) {
		cm, cached, err := s.eng.Compile(spec, nil)
		if err != nil {
			return nil, err
		}
		j.Log().Info("compile", "model ready", "id", cm.ID[:12], "cached", fmt.Sprint(cached))
		return cm.Info(cached), nil
	})
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	cm, ok := s.eng.Model(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown model"))
		return
	}
	writeJSON(w, http.StatusOK, cm.Info(true))
}

// wireDeadline is the shared per-job deadline field.
func wireDeadline(ms int64) time.Duration {
	if ms <= 0 {
		return 0
	}
	return time.Duration(ms) * time.Millisecond
}

// simulateWire adds the job deadline to the engine request.
type simulateWire struct {
	SimulateRequest
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req simulateWire
	if !decode(w, r, &req) {
		return
	}
	s.submit(w, r, "simulate", wireDeadline(req.DeadlineMS), func(j *Job) (any, error) {
		cm, err := s.resolve(req.Model, req.Spec)
		if err != nil {
			return nil, err
		}
		res, err := RunSimulate(cm, req.SimulateRequest, SimOpts{
			Budget: j.Budget(), Registry: s.cfg.Registry, Log: j.Log().Scope("ode"),
			Row: func(row int, t float64, _ []float64) error {
				j.Log().Debug("row", "output row", "row", row, "t", t)
				return nil
			},
		})
		// A budget-stopped simulate still carries its partial rows.
		if err != nil && res == nil {
			return nil, err
		}
		return res, err
	})
}

type fitWire struct {
	FitRequest
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

func (s *Server) handleFit(w http.ResponseWriter, r *http.Request) {
	var req fitWire
	if !decode(w, r, &req) {
		return
	}
	s.submit(w, r, "fit", wireDeadline(req.DeadlineMS), func(j *Job) (any, error) {
		cm, err := s.resolve(req.Model, req.Spec)
		if err != nil {
			return nil, err
		}
		fo := FitOpts{
			Budget: j.Budget(), Registry: s.cfg.Registry, Log: j.Log(),
			Observer: ObserveLM(s.cfg.Registry, j.Log().Scope("lm")),
		}
		ckptPath := ""
		if s.cfg.CheckpointDir != "" {
			ckptPath = filepath.Join(s.cfg.CheckpointDir, j.ID+".ckpt")
			fo.Checkpoint = func(cs nlopt.CheckState, est *estimator.Estimator) error {
				return checkpoint.SaveRun(ckptPath, checkpoint.RunState{
					Opt: cs, Est: est.Snapshot(),
				})
			}
		}
		out, err := RunFit(cm, req.FitRequest, fo)
		if err != nil && out == nil {
			return nil, err
		}
		defer out.Est.Close()
		res := out.Result(cm.ID)
		if err != nil {
			// Budget trip: report the partial fit and where to resume.
			res.Stopped = err.Error()
			res.Checkpoint = ckptPath
			return res, err
		}
		return res, nil
	})
}

// VerifyRequest cross-checks the cache: the spec is compiled twice —
// through the cache and fresh — and a short trajectory from each must
// agree bit-for-bit. A divergence would mean cached artifacts alter
// numerics, which the content-addressed design promises they never do.
type VerifyRequest struct {
	Spec       ModelSpec          `json:"spec"`
	TEnd       float64            `json:"tend,omitempty"`   // default 0.1
	Points     int                `json:"points,omitempty"` // default 5
	Rates      map[string]float64 `json:"rates,omitempty"`
	DeadlineMS int64              `json:"deadline_ms,omitempty"`
}

// VerifyResult reports the cross-check.
type VerifyResult struct {
	Model      string `json:"model"`
	OK         bool   `json:"ok"`
	Rows       int    `json:"rows"`
	Checks     int    `json:"checks"`
	Mismatches int    `json:"mismatches"`
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req VerifyRequest
	if !decode(w, r, &req) {
		return
	}
	if req.TEnd == 0 {
		req.TEnd = 0.1
	}
	if req.Points == 0 {
		req.Points = 5
	}
	s.submit(w, r, "verify", wireDeadline(req.DeadlineMS), func(j *Job) (any, error) {
		cached, _, err := s.eng.Compile(req.Spec, nil)
		if err != nil {
			return nil, err
		}
		fresh, err := s.eng.BuildUncached(req.Spec)
		if err != nil {
			return nil, err
		}
		sim := SimulateRequest{TEnd: req.TEnd, Points: req.Points, Rates: req.Rates}
		so := SimOpts{Budget: j.Budget(), Log: j.Log().Scope("ode")}
		a, err := RunSimulate(cached, sim, so)
		if err != nil {
			return nil, err
		}
		b, err := RunSimulate(fresh, sim, so)
		if err != nil {
			return nil, err
		}
		out := VerifyResult{Model: cached.ID, Rows: len(a.Rows)}
		for ri := range a.Rows {
			for ci := range a.Rows[ri] {
				out.Checks++
				if math.Float64bits(a.Rows[ri][ci]) != math.Float64bits(b.Rows[ri][ci]) {
					out.Mismatches++
				}
			}
		}
		out.OK = out.Mismatches == 0 && len(a.Rows) == len(b.Rows)
		if !out.OK {
			j.Log().Error("verify", "cache divergence", "mismatches", out.Mismatches)
		}
		return out, nil
	})
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.q.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.q.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job"))
		return
	}
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-j.Done():
		case <-r.Context().Done():
			return
		}
	}
	writeJSON(w, http.StatusOK, j.View())
}

// handleJobEvents streams the job's flight recorder as ndjson: one
// telemetry event per line, flushed as they arrive, ending when the
// job reaches a terminal state. ?after=N resumes past a cursor.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.q.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job"))
		return
	}
	after, _ := strconv.ParseUint(r.URL.Query().Get("after"), 10, 64)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		evs := j.Recorder().Since(after)
		for _, ev := range evs {
			enc.Encode(ev)
			after = ev.Seq
		}
		if fl != nil {
			fl.Flush()
		}
		if j.terminal() {
			// One final drain already happened above; anything appended
			// strictly after a terminal state is unreachable.
			if len(j.Recorder().Since(after)) == 0 {
				return
			}
			continue
		}
		select {
		case <-j.Done():
		case <-time.After(s.pollInterval):
		case <-r.Context().Done():
			return
		}
	}
}
