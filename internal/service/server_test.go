package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rms/internal/telemetry"
)

const testModel = `
species A = "[CH3:1][CH3:2]" init 1.0
reaction Decompose {
    reactants A
    disconnect 1:1 1:2
    rate K_d
}
`

func testSpec() ModelSpec {
	return ModelSpec{Kind: KindRDL, Source: testModel, RCIP: "K_d = 2"}
}

// newTestServer builds a Server over httptest with its own registry.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *telemetry.Registry) {
	t.Helper()
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
		cfg.Registry = reg
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Shutdown(5 * time.Second)
		ts.Close()
	})
	return srv, ts, reg
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// decodeJob reads a JobView envelope, failing the test unless the job
// reached wantStatus; it decodes the result into out when non-nil.
func decodeJob(t *testing.T, resp *http.Response, wantStatus string, out any) JobView {
	t.Helper()
	defer resp.Body.Close()
	var raw struct {
		ID     string          `json:"id"`
		Kind   string          `json:"kind"`
		Status string          `json:"status"`
		Error  string          `json:"error"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if raw.Status != wantStatus {
		t.Fatalf("job %s: status %s (err %q), want %s", raw.ID, raw.Status, raw.Error, wantStatus)
	}
	if out != nil {
		if err := json.Unmarshal(raw.Result, out); err != nil {
			t.Fatalf("job %s result: %v", raw.ID, err)
		}
	}
	return JobView{ID: raw.ID, Kind: raw.Kind, Status: raw.Status, Error: raw.Error}
}

// TestLifecycle walks the full compile → simulate → fit → poll →
// stream arc one client would.
func TestLifecycle(t *testing.T) {
	_, ts, reg := newTestServer(t, Config{QueueCap: 8, Workers: 2})

	// Compile. First request is a miss that compiles.
	resp := postJSON(t, ts.URL+"/v1/models?wait=1", testSpec())
	var info ModelInfo
	decodeJob(t, resp, "done", &info)
	if info.ID == "" || info.Cached {
		t.Fatalf("first compile: %+v", info)
	}
	if got := reg.Counter("service.compilations").Value(); got != 1 {
		t.Fatalf("compilations = %d, want 1", got)
	}

	// Second identical compile: cache hit, same id, no new compilation.
	resp = postJSON(t, ts.URL+"/v1/models?wait=1", testSpec())
	var info2 ModelInfo
	decodeJob(t, resp, "done", &info2)
	if !info2.Cached || info2.ID != info.ID {
		t.Fatalf("second compile: %+v (first id %s)", info2, info.ID)
	}
	if hits := reg.Counter("service.cache_hits").Value(); hits != 1 {
		t.Fatalf("cache_hits = %d, want 1", hits)
	}
	if got := reg.Counter("service.compilations").Value(); got != 1 {
		t.Fatalf("compilations after hit = %d, want 1", got)
	}

	// A different optimization level is a different content address.
	alt := testSpec()
	alt.Optimize = "none"
	resp = postJSON(t, ts.URL+"/v1/models?wait=1", alt)
	var info3 ModelInfo
	decodeJob(t, resp, "done", &info3)
	if info3.ID == info.ID || info3.Cached {
		t.Fatalf("optimize=none should compile fresh: %+v", info3)
	}

	// Model summary endpoint.
	resp, err := http.Get(ts.URL + "/v1/models/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET model = %d", resp.StatusCode)
	}

	// Simulate asynchronously, then poll.
	resp = postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Model: info.ID, TEnd: 1, Points: 11})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("simulate submit = %d", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	resp.Body.Close()
	if !strings.HasPrefix(loc, "/v1/jobs/") {
		t.Fatalf("Location = %q", loc)
	}
	resp, err = http.Get(ts.URL + loc + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	var sim SimulateResult
	decodeJob(t, resp, "done", &sim)
	if len(sim.Rows) != 11 || sim.Rows[0][1] != 1.0 {
		t.Fatalf("trajectory: %d rows, y0=%v", len(sim.Rows), sim.Rows[0])
	}
	// A first-order decay at K_d=2: A(1) ≈ exp(-2).
	if a := sim.Rows[10][1]; a < 0.12 || a > 0.16 {
		t.Fatalf("A(1) = %g, want ≈ 0.135", a)
	}

	// Fit against data synthesized from the simulate result (property
	// "sum" is conserved-mass-ish; just check the machinery converges).
	df := DataFile{Name: "synth"}
	for _, row := range sim.Rows[1:] {
		s := 0.0
		for _, v := range row[1:] {
			s += v
		}
		df.T = append(df.T, row[0])
		df.V = append(df.V, s)
	}
	fitReq := FitRequest{
		Model: info.ID, Data: []DataFile{df}, Property: "sum",
		MaxIter: 5, RelStep: 1e-4,
		Start: []float64{1}, Lower: []float64{0.2}, Upper: []float64{20},
	}
	resp = postJSON(t, ts.URL+"/v1/fit?wait=1", fitReq)
	var fit FitResult
	jv := decodeJob(t, resp, "done", &fit)
	if len(fit.X) != 1 || fit.X[0] <= 0 {
		t.Fatalf("fit: %+v", fit)
	}
	// The fitted K_d should head back toward the truth the data came
	// from.
	if fit.X[0] < 1.2 || fit.X[0] > 3.5 {
		t.Errorf("fitted K_d = %g, want near 2", fit.X[0])
	}

	// Stream the fit job's flight recorder as ndjson.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + jv.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	events := 0
	sawIter := false
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad ndjson line %q: %v", sc.Text(), err)
		}
		if ev["kind"] == "iter" {
			sawIter = true
		}
		events++
	}
	if events == 0 || !sawIter {
		t.Fatalf("event stream: %d events, iter seen = %v", events, sawIter)
	}

	// The jobs index lists everything newest-first.
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var jobs []JobView
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(jobs) != 5 {
		t.Fatalf("jobs index has %d entries, want 5", len(jobs))
	}

	// Verify: cached vs fresh compilation, bit-identical.
	resp = postJSON(t, ts.URL+"/v1/verify?wait=1", VerifyRequest{Spec: testSpec()})
	var ver VerifyResult
	decodeJob(t, resp, "done", &ver)
	if !ver.OK || ver.Checks == 0 || ver.Mismatches != 0 {
		t.Fatalf("verify: %+v", ver)
	}
}

// TestAdmissionControl fills the queue with blocked jobs and checks the
// 429 + Retry-After contract, then drains and checks recovery.
func TestAdmissionControl(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{QueueCap: 1, Workers: 1})

	release := make(chan struct{})
	running := make(chan struct{})
	block := func(j *Job) (any, error) {
		select {
		case running <- struct{}{}:
		default:
		}
		select {
		case <-release:
		case <-j.Budget().Done(): // stay drainable if the test bails early
		}
		return nil, nil
	}
	// One job occupies the worker...
	if _, err := srv.Queue().Submit("block", 0, block); err != nil {
		t.Fatal(err)
	}
	<-running // ...and is off the channel before the next fills the slot.
	if _, err := srv.Queue().Submit("block", 0, block); err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, ts.URL+"/v1/models", testSpec())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	var ae struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil || ae.Error == "" {
		t.Fatalf("429 body: %v %q", err, ae.Error)
	}

	close(release)
	// The queue drains; a retry then succeeds.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := postJSON(t, ts.URL+"/v1/models?wait=1", testSpec())
		if resp.StatusCode == http.StatusOK {
			decodeJob(t, resp, "done", nil)
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("queue never drained (last status %d)", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBadRequests table-drives the 4xx surface: malformed JSON, type
// errors, unknown fields, oversized bodies, missing resources.
func TestBadRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{QueueCap: 4, Workers: 1})

	cases := []struct {
		name, path, body string
		want             int
	}{
		{"truncated json", "/v1/models", `{"kind": "rdl"`, 400},
		{"not json", "/v1/simulate", `K_d = 2`, 400},
		{"wrong type", "/v1/simulate", `{"tend": "soon"}`, 400},
		{"unknown field", "/v1/models", `{"kind": "rdl", "sources": "x"}`, 400},
		{"array body", "/v1/fit", `[1,2,3]`, 400},
		{"empty body", "/v1/verify", ``, 400},
		{"huge body", "/v1/models", `{"kind": "rdl", "source": "` + strings.Repeat("x", maxBodyBytes) + `"}`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.want)
			}
			var ae struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil || ae.Error == "" {
				t.Fatalf("error envelope: %v %q", err, ae.Error)
			}
		})
	}

	// Spec-level validation failures surface as failed jobs, not 5xx.
	resp := postJSON(t, ts.URL+"/v1/models?wait=1", ModelSpec{Kind: "fortran", Source: "x"})
	decodeJob(t, resp, "failed", nil)
	resp = postJSON(t, ts.URL+"/v1/simulate?wait=1", SimulateRequest{TEnd: 1, Points: 5})
	decodeJob(t, resp, "failed", nil) // no model and no spec

	for _, path := range []string{"/v1/models/nope", "/v1/jobs/nope", "/v1/jobs/nope/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestShutdownDrain submits a slow job, shuts down, and checks the
// in-flight job finishes inside the drain window while new submissions
// bounce with 503.
func TestShutdownDrain(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{QueueCap: 4, Workers: 1})

	started := make(chan struct{})
	finished := false
	j, err := srv.Queue().Submit("slow", 0, func(*Job) (any, error) {
		close(started)
		time.Sleep(300 * time.Millisecond)
		finished = true
		return "ok", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	done := make(chan bool, 1)
	go func() { done <- srv.Shutdown(5 * time.Second) }()

	// The queue refuses new work immediately (the HTTP handler keeps
	// answering until the listener closes).
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp := postJSON(t, ts.URL+"/v1/models", testSpec())
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("draining server answered %d, want 503", code)
		}
		time.Sleep(5 * time.Millisecond)
	}

	clean := <-done
	if !clean {
		t.Fatal("drain reported unclean shutdown")
	}
	<-j.Done()
	if !finished || j.View().Status != "done" {
		t.Fatalf("in-flight job: finished=%v status=%s", finished, j.View().Status)
	}
}

// TestShutdownDeadline checks an over-budget job is cancelled at the
// drain deadline rather than pinning shutdown.
func TestShutdownDeadline(t *testing.T) {
	srv, _, _ := newTestServer(t, Config{QueueCap: 4, Workers: 1})

	started := make(chan struct{})
	j, err := srv.Queue().Submit("stuck", 0, func(j *Job) (any, error) {
		close(started)
		<-j.Budget().Done() // cooperative cancellation point
		return nil, j.Budget().Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	start := time.Now()
	clean := srv.Shutdown(100 * time.Millisecond)
	if clean {
		t.Fatal("shutdown claimed clean despite stuck job")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("shutdown took %s", d)
	}
	<-j.Done()
	if got := j.View().Status; got != "canceled" {
		t.Fatalf("stuck job status = %s, want canceled", got)
	}
}

// TestSimulateDeadlinePartial checks a budget-stopped simulate job
// reports canceled with the partial rows attached.
func TestSimulateDeadlinePartial(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{QueueCap: 4, Workers: 1})
	body := map[string]any{
		"spec": testSpec(), "tend": 1e6, "points": 100000,
		"rtol": 1e-12, "atol": 1e-14, "deadline_ms": 50,
	}
	resp := postJSON(t, ts.URL+"/v1/simulate?wait=1", body)
	defer resp.Body.Close()
	var raw struct {
		Status string          `json:"status"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if raw.Status != "canceled" {
		t.Skipf("simulate finished before the deadline (status %s)", raw.Status)
	}
	var sim SimulateResult
	if err := json.Unmarshal(raw.Result, &sim); err != nil {
		t.Fatal(err)
	}
	if len(sim.Rows) == 0 || sim.Row != len(sim.Rows)-1 {
		t.Fatalf("partial result: %d rows, Row=%d", len(sim.Rows), sim.Row)
	}
	if len(sim.Y) == 0 {
		t.Fatal("partial result missing resume state Y")
	}
}

// TestEventStreamFollowsRunningJob starts the stream before the job
// finishes and checks it ends exactly when the job does.
func TestEventStreamFollowsRunningJob(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{QueueCap: 4, Workers: 1})
	srv.pollInterval = 5 * time.Millisecond

	release := make(chan struct{})
	j, err := srv.Queue().Submit("chatty", 0, func(j *Job) (any, error) {
		j.Log().Info("tick", "first")
		<-release
		j.Log().Info("tock", "second")
		return "done", nil
	})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	lines := make(chan string)
	go func() {
		defer close(lines)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()

	seen := map[string]bool{}
	collect := func(until string, timeout time.Duration) {
		t.Helper()
		deadline := time.After(timeout)
		for {
			select {
			case ln, ok := <-lines:
				if !ok {
					return
				}
				var ev map[string]any
				if err := json.Unmarshal([]byte(ln), &ev); err != nil {
					t.Fatalf("bad line %q: %v", ln, err)
				}
				if name, _ := ev["kind"].(string); name != "" {
					seen[name] = true
					if name == until {
						return
					}
				}
			case <-deadline:
				t.Fatalf("timed out waiting for %q (seen %v)", until, seen)
			}
		}
	}
	collect("tick", 5*time.Second)
	close(release)
	collect("tock", 5*time.Second)
	// After the job completes the stream must terminate.
	select {
	case _, ok := <-lines:
		for ok {
			_, ok = <-lines
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not terminate after job completion")
	}
}

// TestCacheKeyStability pins the content-addressing contract: the key
// covers every spec field, and formatting-identical specs collide.
func TestCacheKeyStability(t *testing.T) {
	key := func(s ModelSpec) string {
		t.Helper()
		if err := s.normalize(); err != nil {
			t.Fatal(err)
		}
		return s.CacheKey()
	}
	k1 := key(testSpec())
	if k2 := key(testSpec()); k1 != k2 {
		t.Fatal("identical specs produced different keys")
	}
	if len(k1) != 64 {
		t.Fatalf("key %q is not sha256 hex", k1)
	}
	variants := []func(*ModelSpec){
		func(s *ModelSpec) { s.Source += " " },
		func(s *ModelSpec) { s.RCIP = "K_d = 3" },
		func(s *ModelSpec) { s.Optimize = "none" },
	}
	for i, mut := range variants {
		s := testSpec()
		mut(&s)
		if key(s) == k1 {
			t.Fatalf("variant %d did not change the cache key", i)
		}
	}
	// Defaulted and explicit forms of the same spec share an address.
	implicit := ModelSpec{Source: testModel, RCIP: "K_d = 2"}
	explicit := ModelSpec{Kind: KindRDL, Source: testModel, RCIP: "K_d = 2", Optimize: "full"}
	if key(implicit) != key(explicit) {
		t.Fatal("defaulted spec addresses differently from its explicit form")
	}
}
