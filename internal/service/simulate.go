package service

import (
	"fmt"
	"math"

	"rms/internal/budget"
	"rms/internal/linalg"
	"rms/internal/ode"
	"rms/internal/telemetry"
)

// SimulateRequest is one trajectory request against a compiled model.
// The defaults reproduce the rmssim CLI exactly: the adams-gear (BDF)
// solver with a dense analytic Jacobian, tolerances 1e-8/1e-11, and an
// evenly spaced output grid of Points rows over [0, TEnd].
type SimulateRequest struct {
	// Model is the cached model ID; Spec compiles (or cache-hits)
	// inline instead. Exactly one must be set on HTTP requests; the
	// direct RunSimulate entry point takes the model as an argument and
	// ignores both.
	Model string     `json:"model,omitempty"`
	Spec  *ModelSpec `json:"spec,omitempty"`

	// TEnd is the integration horizon (> 0); Points the number of
	// output rows including t=0 (>= 2).
	TEnd   float64 `json:"tend"`
	Points int     `json:"points"`
	// Solver is "adams-gear" (default) or "runge-kutta".
	Solver string `json:"solver,omitempty"`
	// RTol and ATol default to 1e-8 and 1e-11 (the rmssim defaults).
	RTol float64 `json:"rtol,omitempty"`
	ATol float64 `json:"atol,omitempty"`
	// Rates supplies rate-constant values by name, overriding (and
	// completing) the model's RCIP table. Every rate constant must end
	// up with a value.
	Rates map[string]float64 `json:"rates,omitempty"`
	// Sparse switches the BDF Newton iteration to the sparse path,
	// forking the model's shared symbolic LU per request. Off by
	// default: the dense path is the rmssim-compatible one.
	Sparse bool `json:"sparse,omitempty"`
	// StartRow and Y resume a trajectory from a checkpoint: rows 0..
	// StartRow were already produced and Y is the state at StartRow.
	StartRow int       `json:"start_row,omitempty"`
	Y        []float64 `json:"y,omitempty"`
}

// SimulateResult is the trajectory. Row values travel as JSON float64,
// which Go encodes in shortest-round-trip form, so results are
// bit-identical across the HTTP boundary.
type SimulateResult struct {
	Model   string   `json:"model"`
	Species []string `json:"species"`
	// Rows holds [t, y0, y1, ...] per output row, from row StartRow (or
	// row 0 on a fresh run) through Row.
	Rows [][]float64 `json:"rows"`
	// Row is the last completed output row; Y the state there. A
	// budget-stopped run returns both so the caller can checkpoint and
	// resume.
	Row int       `json:"row"`
	Y   []float64 `json:"y"`
}

// SimOpts carries the per-request environment. Every field is
// optional; zero values run silent and unbounded.
type SimOpts struct {
	// Budget bounds the integration cooperatively; a trip returns the
	// partial result plus the budget's error.
	Budget *budget.Budget
	// Registry receives the solver and tape counters.
	Registry *telemetry.Registry
	// Log is handed to the solver for rare-event records.
	Log *telemetry.Logger
	// Row, when non-nil, observes each completed output row in order
	// (row 0 included on fresh runs) — the CLI writes CSV and
	// checkpoints here. A Row error aborts the run with that error.
	Row func(row int, t float64, y []float64) error
}

// ObserveSolver publishes per-step solver telemetry into reg — the
// shared wiring behind rmssim and the rmsd job runner.
func ObserveSolver(reg *telemetry.Registry) ode.StepObserver {
	steps := reg.Counter("ode.steps")
	rejected := reg.Counter("ode.rejected_steps")
	newton := reg.Counter("ode.newton_iters")
	factor := reg.Counter("ode.factorizations")
	h := reg.Histogram("ode.step_size", []float64{1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100})
	order := reg.Gauge("ode.order")
	return func(ev ode.StepEvent) {
		if ev.Accepted {
			steps.Inc()
		} else {
			rejected.Inc()
		}
		newton.Add(int64(ev.NewtonIters))
		factor.Add(int64(ev.Factorizations))
		h.Observe(math.Abs(ev.H))
		order.Set(float64(ev.Order))
	}
}

// rateVector assembles the aligned rate-constant vector: request
// overrides first, then the model's RCIP table.
func rateVector(cm *CompiledModel, overrides map[string]float64) ([]float64, error) {
	names := cm.Res.System.Rates
	k := make([]float64, len(names))
	for i, name := range names {
		if v, ok := overrides[name]; ok {
			k[i] = v
			continue
		}
		if cm.Res.Rates != nil {
			if v, ok := cm.Res.Rates.Values[name]; ok {
				k[i] = v
				continue
			}
		}
		return nil, fmt.Errorf("service: rate constant %s has no value (supply rcip or rates)", name)
	}
	return k, nil
}

// RunSimulate integrates one trajectory against a compiled model. It
// is the single simulation code path: rmssim wraps it with CSV output
// and per-row checkpoints, the rmsd job runner with JSON results.
//
// On a budget trip the partial result (rows completed so far, with Row
// and Y positioned for a resume) is returned TOGETHER with the
// budget's error; any other error returns a nil result.
func RunSimulate(cm *CompiledModel, req SimulateRequest, so SimOpts) (*SimulateResult, error) {
	if req.Points < 2 {
		return nil, fmt.Errorf("service: need at least 2 output points, got %d", req.Points)
	}
	if req.TEnd <= 0 {
		return nil, fmt.Errorf("service: tend must be positive, got %g", req.TEnd)
	}
	if req.Solver == "" {
		req.Solver = "adams-gear"
	}
	if req.RTol == 0 {
		req.RTol = 1e-8
	}
	if req.ATol == 0 {
		req.ATol = 1e-11
	}
	k, err := rateVector(cm, req.Rates)
	if err != nil {
		return nil, err
	}
	res := cm.Res
	n := len(res.System.Y0)

	ev := res.Tape.NewEvaluator()
	ev.Observe(so.Registry)
	rhs := func(_ float64, y, dy []float64) { ev.Eval(y, k, dy) }
	opts := ode.Options{RTol: req.RTol, ATol: req.ATol, Budget: so.Budget, Log: so.Log}
	if so.Registry != nil {
		opts.Observer = ObserveSolver(so.Registry)
	}
	var integrate func(t0, t1 float64, y []float64) error
	switch req.Solver {
	case "adams-gear":
		if req.Sparse && cm.Pattern != nil {
			je := res.Jacobian.NewEvaluator()
			opts.SparsePattern = cm.Pattern
			opts.SparseJacobian = func(_ float64, y []float64, dst *linalg.CSR) {
				je.EvalCSR(y, k, dst)
			}
			opts.SymbolicLU = cm.LU
			// The request asked for the sparse path explicitly; open the
			// density/dimension gates so small models take it too.
			opts.SparseThreshold = 1
			opts.SparseMinDim = 2
		} else if res.Jacobian != nil {
			je := res.Jacobian.NewEvaluator()
			opts.Jacobian = func(_ float64, y []float64, dst *linalg.Matrix) {
				je.Eval(y, k, dst)
			}
		}
		integrate = ode.NewBDF(rhs, n, opts).Integrate
	case "runge-kutta":
		integrate = ode.NewRKV65(rhs, n, opts).Integrate
	default:
		return nil, fmt.Errorf("service: unknown solver %q", req.Solver)
	}

	out := &SimulateResult{Model: cm.ID, Species: res.System.Species}
	y := append([]float64(nil), res.System.Y0...)
	emit := func(row int, t float64) error {
		out.Rows = append(out.Rows, append([]float64{t}, y...))
		out.Row = row
		// Snapshot the state at the completed row: a budget trip may
		// leave y mid-interval, and resumes must restart from a row.
		out.Y = append(out.Y[:0], y...)
		if so.Row != nil {
			return so.Row(row, t, y)
		}
		return nil
	}
	startRow := 1
	if req.StartRow > 0 {
		if len(req.Y) != n {
			return nil, fmt.Errorf("service: resume state has %d species, model has %d", len(req.Y), n)
		}
		copy(y, req.Y)
		startRow = req.StartRow + 1
		out.Row = req.StartRow
		out.Y = append([]float64(nil), y...)
	} else {
		if err := emit(0, 0); err != nil {
			return nil, err
		}
	}
	for i := startRow; i < req.Points; i++ {
		t0 := req.TEnd * float64(i-1) / float64(req.Points-1)
		t1 := req.TEnd * float64(i) / float64(req.Points-1)
		if err := integrate(t0, t1, y); err != nil {
			if budget.Exhausted(err) {
				return out, err
			}
			return nil, err
		}
		if err := emit(i, t1); err != nil {
			return nil, err
		}
	}
	return out, nil
}
