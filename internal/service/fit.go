package service

import (
	"fmt"

	"rms/internal/budget"
	"rms/internal/checkpoint"
	"rms/internal/dataset"
	"rms/internal/estimator"
	"rms/internal/nlopt"
	"rms/internal/ode"
	"rms/internal/sched"
	"rms/internal/telemetry"
	"rms/internal/vulcan"
)

// DataFile is one experimental data file on the wire: parallel time
// and value arrays (dataset.File flattened for JSON).
type DataFile struct {
	Name string    `json:"name"`
	T    []float64 `json:"t"`
	V    []float64 `json:"v"`
}

// toDataset converts wire files to estimator inputs.
func toDataset(in []DataFile) ([]*dataset.File, error) {
	if len(in) == 0 {
		return nil, fmt.Errorf("service: fit needs at least one data file")
	}
	files := make([]*dataset.File, len(in))
	for i, df := range in {
		if len(df.T) != len(df.V) {
			return nil, fmt.Errorf("service: data file %q: %d times vs %d values", df.Name, len(df.T), len(df.V))
		}
		if len(df.T) == 0 {
			return nil, fmt.Errorf("service: data file %q is empty", df.Name)
		}
		f := &dataset.File{Name: df.Name}
		for j := range df.T {
			f.Records = append(f.Records, dataset.Record{T: df.T[j], Value: df.V[j]})
		}
		files[i] = f
	}
	return files, nil
}

// FromDataset converts estimator inputs to wire files — the CLI path
// through RunFit and the rmsctl client both use it.
func FromDataset(files []*dataset.File) []DataFile {
	out := make([]DataFile, len(files))
	for i, f := range files {
		df := DataFile{Name: f.Name}
		for _, r := range f.Records {
			df.T = append(df.T, r.T)
			df.V = append(df.V, r.Value)
		}
		out[i] = df
	}
	return out
}

// SchedSpec mirrors sched.Config on the wire.
type SchedSpec struct {
	Policy     string  `json:"policy,omitempty"` // ewma (default) | lpt | static
	Alpha      float64 `json:"alpha,omitempty"`
	SplitShare float64 `json:"split_share,omitempty"`
	MaxParts   int     `json:"max_parts,omitempty"`
	Lanes      int     `json:"lanes,omitempty"`
	Steal      bool    `json:"steal,omitempty"`
}

// toConfig resolves the wire spec to a live scheduler config.
func (s *SchedSpec) toConfig() (*sched.Config, error) {
	if s == nil {
		return nil, nil
	}
	cfg := &sched.Config{
		Rebalance: true, Alpha: s.Alpha,
		SplitShare: s.SplitShare, MaxParts: s.MaxParts,
		Lanes: s.Lanes, Steal: s.Steal,
	}
	if s.Policy != "" {
		p, err := sched.ParsePolicy(s.Policy)
		if err != nil {
			return nil, err
		}
		cfg.Policy = p
	}
	return cfg, nil
}

// FitRequest is one parameter-estimation request against a compiled
// model.
type FitRequest struct {
	// Model / Spec select the model like SimulateRequest.
	Model string     `json:"model,omitempty"`
	Spec  *ModelSpec `json:"spec,omitempty"`

	// Data are the experimental files to fit against.
	Data []DataFile `json:"data"`
	// Property maps the state vector to the measured property: "sum"
	// (default, the conformance harness's property) or "crosslink"
	// (the vulcanization crosslink density).
	Property string `json:"property,omitempty"`
	// RTol and ATol are the solver tolerances (defaults 1e-9 / 1e-12,
	// the rmsrun values).
	RTol float64 `json:"rtol,omitempty"`
	ATol float64 `json:"atol,omitempty"`

	// Parallel-runtime shape (estimator.Config).
	Ranks       int        `json:"ranks,omitempty"` // default 1
	LoadBalance bool       `json:"lb,omitempty"`
	Workers     int        `json:"workers,omitempty"`
	Batch       bool       `json:"batch,omitempty"`
	Sched       *SchedSpec `json:"sched,omitempty"`

	// Optimizer shape (nlopt.Options); zero fields take the nlopt
	// defaults.
	MaxIter int     `json:"maxiter,omitempty"`
	Tol     float64 `json:"tol,omitempty"`
	RelStep float64 `json:"relstep,omitempty"`

	// Start, Lower and Upper are the aligned bound vectors over the
	// model's rate constants (Res.System.Rates order). All three are
	// required and must have the rate-constant count.
	Start []float64 `json:"start"`
	Lower []float64 `json:"lower"`
	Upper []float64 `json:"upper"`
}

// FitResult is the JSON-facing fit outcome.
type FitResult struct {
	Model      string    `json:"model"`
	Rates      []string  `json:"rates"`
	X          []float64 `json:"x"`
	RNorm      float64   `json:"rnorm"`
	Iterations int       `json:"iterations"`
	Converged  bool      `json:"converged"`
	Calls      int       `json:"calls"`
	WallSecs   float64   `json:"wall_seconds"`
	// Stopped carries the budget error of a run that ended early; the
	// X/RNorm fields then hold the best point reached. Checkpoint is
	// the server-side resume file, when one was written.
	Stopped    string `json:"stopped,omitempty"`
	Checkpoint string `json:"checkpoint,omitempty"`
}

// FitOpts carries the per-request environment for RunFit. All fields
// are optional.
type FitOpts struct {
	Budget   *budget.Budget
	Tracer   *telemetry.Tracer
	Registry *telemetry.Registry
	Log      *telemetry.Logger
	// Observer receives one event per LM iteration (see ObserveLM).
	Observer func(nlopt.IterEvent)
	// Checkpoint, when non-nil, is called at every LM iteration
	// boundary with the optimizer state and the live estimator (for
	// est.Snapshot()); an error aborts the fit.
	Checkpoint func(cs nlopt.CheckState, est *estimator.Estimator) error
	// Resume restarts the fit from a saved run state: the estimator is
	// restored and the optimizer continues from the recorded iteration.
	Resume *checkpoint.RunState
}

// FitOutcome is the full-fidelity outcome for in-process callers: the
// optimizer result plus the live estimator (for Analyze, Calls and
// runtime accounting). HTTP callers receive the FitResult projection.
type FitOutcome struct {
	Fit   *nlopt.Result
	Est   *estimator.Estimator
	Rates []string
}

// Result projects the outcome onto the wire type.
func (o *FitOutcome) Result(modelID string) FitResult {
	return FitResult{
		Model: modelID, Rates: o.Rates,
		X: o.Fit.X, RNorm: o.Fit.RNorm,
		Iterations: o.Fit.Iterations, Converged: o.Fit.Converged,
		Calls: o.Est.Calls(), WallSecs: o.Est.WallSeconds(),
	}
}

// ObserveLM publishes per-iteration optimizer telemetry into reg
// (nil-safe) and mirrors each iteration into log's flight recorder —
// the shared wiring behind rmsrun and the rmsd job runner, and what
// the /progress and per-job event streams show.
func ObserveLM(reg *telemetry.Registry, log *telemetry.Logger) func(nlopt.IterEvent) {
	iters := reg.Counter("lm.iterations")
	trials := reg.Counter("lm.trials")
	nonFinite := reg.Counter("lm.nonfinite_trials")
	accepted := reg.Counter("lm.accepted_iters")
	lambda := reg.Gauge("lm.lambda")
	rnorm := reg.Gauge("lm.rnorm")
	freeVars := reg.Gauge("lm.free_vars")
	return func(ev nlopt.IterEvent) {
		iters.Inc()
		trials.Add(int64(ev.Trials))
		nonFinite.Add(int64(ev.NonFiniteTrials))
		if ev.Improved {
			accepted.Inc()
		}
		lambda.Set(ev.Lambda)
		rnorm.Set(ev.RNorm)
		freeVars.Set(float64(ev.FreeVars))
		log.Info("iter", "LM iteration",
			"iter", ev.Iter, "rnorm", ev.RNorm, "lambda", ev.Lambda,
			"improved", fmt.Sprint(ev.Improved), "trials", ev.Trials)
	}
}

// property resolves the named property function.
func property(cm *CompiledModel, name string) (func(y []float64) float64, error) {
	switch name {
	case "", "sum":
		return func(y []float64) float64 {
			s := 0.0
			for _, v := range y {
				s += v
			}
			return s
		}, nil
	case "crosslink":
		return vulcan.CrosslinkProperty(cm.Res.System), nil
	}
	return nil, fmt.Errorf("service: unknown property %q (sum|crosslink)", name)
}

// RunFit fits the model's rate constants to the request's data. It is
// the single estimation code path: rmsrun wraps it with table output
// and checkpoint files, the rmsd job runner with JSON results.
//
// Like the underlying optimizer, a budget-stopped fit returns BOTH a
// well-formed partial outcome (best point reached) and the budget's
// error, so callers can checkpoint before unwinding.
func RunFit(cm *CompiledModel, req FitRequest, fo FitOpts) (*FitOutcome, error) {
	files, err := toDataset(req.Data)
	if err != nil {
		return nil, err
	}
	prop, err := property(cm, req.Property)
	if err != nil {
		return nil, err
	}
	schedCfg, err := req.Sched.toConfig()
	if err != nil {
		return nil, err
	}
	n := len(cm.Res.System.Rates)
	for _, b := range []struct {
		name string
		v    []float64
	}{{"start", req.Start}, {"lower", req.Lower}, {"upper", req.Upper}} {
		if len(b.v) != n {
			return nil, fmt.Errorf("service: %s has %d entries, model has %d rate constants", b.name, len(b.v), n)
		}
	}
	if req.RTol == 0 {
		req.RTol = 1e-9
	}
	if req.ATol == 0 {
		req.ATol = 1e-12
	}
	if req.Ranks == 0 {
		req.Ranks = 1
	}

	model := cm.Res.Model(prop, ode.Options{RTol: req.RTol, ATol: req.ATol})
	// Share the cached symbolic factorization: solves fork it instead
	// of re-running the ordering and fill analysis per request.
	model.SymbolicLU = cm.LU
	est, err := estimator.New(model, files, estimator.Config{
		Ranks: req.Ranks, LoadBalance: req.LoadBalance, Workers: req.Workers,
		Batch: req.Batch, Sched: schedCfg,
		Trace: fo.Tracer, Metrics: fo.Registry, Budget: fo.Budget, Log: fo.Log,
	})
	if err != nil {
		return nil, err
	}

	lmOpts := nlopt.Options{
		MaxIter: req.MaxIter, Tol: req.Tol, RelStep: req.RelStep,
		KeepJacobian: true, Observer: fo.Observer,
	}
	if fo.Checkpoint != nil {
		lmOpts.Checkpoint = func(cs nlopt.CheckState) error {
			return fo.Checkpoint(cs, est)
		}
	}
	if fo.Resume != nil {
		if err := est.Restore(fo.Resume.Est); err != nil {
			est.Close()
			return nil, err
		}
		lmOpts.Resume = &fo.Resume.Opt
	}
	fit, err := est.Estimate(req.Start, req.Lower, req.Upper, lmOpts)
	out := &FitOutcome{Fit: fit, Est: est, Rates: cm.Res.System.Rates}
	if err != nil {
		if budget.Exhausted(err) && fit != nil {
			return out, err
		}
		est.Close()
		return nil, err
	}
	return out, nil
}
