package service

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"rms/internal/telemetry"
)

// TestCompileSingleflight hammers one spec from many goroutines and
// checks the engine compiled exactly once — the joiners wait on the
// winner's flight instead of duplicating work — and that every caller
// got the same compiled artifacts.
func TestCompileSingleflight(t *testing.T) {
	reg := telemetry.NewRegistry()
	eng := NewEngine(reg, nil)
	spec := testSpec()

	const N = 32
	var wg sync.WaitGroup
	models := make([]*CompiledModel, N)
	errs := make([]error, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			models[i], _, errs[i] = eng.Compile(spec, nil)
		}(i)
	}
	wg.Wait()

	for i := 0; i < N; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if models[i] != models[0] {
			t.Fatalf("goroutine %d got a different *CompiledModel", i)
		}
	}
	if got := reg.Counter("service.compilations").Value(); got != 1 {
		t.Fatalf("compilations = %d, want 1 (singleflight)", got)
	}
	hits := reg.Counter("service.cache_hits").Value()
	misses := reg.Counter("service.cache_misses").Value()
	if misses != 1 || hits != N-1 {
		t.Fatalf("hits=%d misses=%d, want %d/1", hits, misses, N-1)
	}
}

// TestCompileManySpecsConcurrently mixes distinct specs across
// goroutines: each distinct content address compiles once.
func TestCompileManySpecsConcurrently(t *testing.T) {
	reg := telemetry.NewRegistry()
	eng := NewEngine(reg, nil)

	const specs, per = 4, 8
	var wg sync.WaitGroup
	for s := 0; s < specs; s++ {
		spec := testSpec()
		spec.RCIP = fmt.Sprintf("K_d = %d", s+1)
		for g := 0; g < per; g++ {
			wg.Add(1)
			go func(spec ModelSpec) {
				defer wg.Done()
				if _, _, err := eng.Compile(spec, nil); err != nil {
					t.Error(err)
				}
			}(spec)
		}
	}
	wg.Wait()
	if got := reg.Counter("service.compilations").Value(); got != specs {
		t.Fatalf("compilations = %d, want %d", got, specs)
	}
	if got := eng.Models(); got != specs {
		t.Fatalf("cached models = %d, want %d", got, specs)
	}
}

// TestConcurrentSimulateSharedModel runs many simulates against ONE
// cached model concurrently — on both the dense path and the sparse
// path that forks the shared symbolic LU — and checks every trajectory
// is bit-identical to a serial baseline. Interleaved solver state or a
// shared numeric factorization would show up here (and under -race).
func TestConcurrentSimulateSharedModel(t *testing.T) {
	eng := NewEngine(nil, nil)
	cm, _, err := eng.Compile(testSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, sparse := range []bool{false, true} {
		name := "dense"
		if sparse {
			name = "sparse-lu-fork"
		}
		t.Run(name, func(t *testing.T) {
			req := SimulateRequest{TEnd: 1, Points: 9, Sparse: sparse}
			base, err := RunSimulate(cm, req, SimOpts{})
			if err != nil {
				t.Fatal(err)
			}
			const N = 16
			var wg sync.WaitGroup
			results := make([]*SimulateResult, N)
			errs := make([]error, N)
			for i := 0; i < N; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					results[i], errs[i] = RunSimulate(cm, req, SimOpts{})
				}(i)
			}
			wg.Wait()
			for i := 0; i < N; i++ {
				if errs[i] != nil {
					t.Fatalf("goroutine %d: %v", i, errs[i])
				}
				if len(results[i].Rows) != len(base.Rows) {
					t.Fatalf("goroutine %d: %d rows vs %d", i, len(results[i].Rows), len(base.Rows))
				}
				for r := range base.Rows {
					for c := range base.Rows[r] {
						if math.Float64bits(results[i].Rows[r][c]) != math.Float64bits(base.Rows[r][c]) {
							t.Fatalf("goroutine %d diverged at row %d col %d: %g vs %g",
								i, r, c, results[i].Rows[r][c], base.Rows[r][c])
						}
					}
				}
			}
		})
	}
}

// TestConcurrentFitSharedModel runs concurrent fits against one cached
// model (each forks the shared symbolic LU through its estimator) and
// checks bit-identical outcomes.
func TestConcurrentFitSharedModel(t *testing.T) {
	eng := NewEngine(nil, nil)
	cm, _, err := eng.Compile(testSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	df := DataFile{Name: "synth"}
	for i := 0; i < 8; i++ {
		df.T = append(df.T, 0.1*float64(i+1))
		df.V = append(df.V, math.Exp(-2*0.1*float64(i+1)))
	}
	req := FitRequest{
		Data: []DataFile{df}, Property: "sum",
		MaxIter: 3, RelStep: 1e-4,
		Start: []float64{1}, Lower: []float64{0.2}, Upper: []float64{20},
	}
	run := func() (FitResult, error) {
		out, err := RunFit(cm, req, FitOpts{})
		if err != nil {
			return FitResult{}, err
		}
		defer out.Est.Close()
		return out.Result(cm.ID), nil
	}
	base, err := run()
	if err != nil {
		t.Fatal(err)
	}
	const N = 8
	var wg sync.WaitGroup
	results := make([]FitResult, N)
	errs := make([]error, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = run()
		}(i)
	}
	wg.Wait()
	for i := 0; i < N; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if math.Float64bits(results[i].X[0]) != math.Float64bits(base.X[0]) ||
			math.Float64bits(results[i].RNorm) != math.Float64bits(base.RNorm) {
			t.Fatalf("goroutine %d diverged: x=%v rnorm=%v vs x=%v rnorm=%v",
				i, results[i].X, results[i].RNorm, base.X, base.RNorm)
		}
	}
}

// TestQueueSubmitRace races submissions against a draining queue; the
// invariant is every accepted job reaches a terminal state and every
// rejection is one of the two documented errors.
func TestQueueSubmitRace(t *testing.T) {
	q := NewQueue(4, 2)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var accepted []*Job
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			j, err := q.Submit("noop", 0, func(*Job) (any, error) { return nil, nil })
			switch err {
			case nil:
				mu.Lock()
				accepted = append(accepted, j)
				mu.Unlock()
			case ErrBusy, ErrShuttingDown:
			default:
				t.Errorf("unexpected submit error: %v", err)
			}
		}()
	}
	wg.Wait()
	if !q.Shutdown(10 * time.Second) {
		// Noop jobs cannot legitimately outlive a drain that waits for
		// the workers; report loudly.
		t.Fatal("queue drain was unclean")
	}
	for _, j := range accepted {
		<-j.Done()
		if st := j.View().Status; st != "done" {
			t.Fatalf("job %s ended %s", j.ID, st)
		}
	}
}
