package dataset

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadBasic(t *testing.T) {
	src := `
# crosslink concentration vs time
0.0 0.00
0.5 0.25

1.0 0.40
`
	f, err := Read(strings.NewReader(src), "exp1.dat")
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRecords() != 3 {
		t.Fatalf("records = %d", f.NumRecords())
	}
	if f.Records[1].T != 0.5 || f.Records[1].Value != 0.25 {
		t.Errorf("record 1 = %+v", f.Records[1])
	}
}

func TestReadSortsByTime(t *testing.T) {
	f, err := Read(strings.NewReader("2 20\n1 10\n3 30\n"), "x")
	if err != nil {
		t.Fatal(err)
	}
	ts := f.Times()
	if ts[0] != 1 || ts[1] != 2 || ts[2] != 3 {
		t.Errorf("times = %v", ts)
	}
	vs := f.Values()
	if vs[0] != 10 || vs[2] != 30 {
		t.Errorf("values = %v", vs)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",               // no records
		"# only comment", // no records
		"1 2 3",          // 3 fields
		"abc 2",          // bad time
		"1 xyz",          // bad value
	}
	for _, src := range cases {
		if _, err := Read(strings.NewReader(src), "bad"); err == nil {
			t.Errorf("Read(%q) succeeded", src)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := Synthesize(func(tt float64) float64 { return tt * tt }, SynthesizeOptions{
		Name: "round.dat", Records: 100, T0: 0, T1: 2,
	})
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Read(&buf, "round.dat")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRecords() != f.NumRecords() {
		t.Fatalf("records: %d vs %d", g.NumRecords(), f.NumRecords())
	}
	for i := range f.Records {
		if math.Abs(f.Records[i].T-g.Records[i].T) > 1e-9 ||
			math.Abs(f.Records[i].Value-g.Records[i].Value) > 1e-9 {
			t.Fatalf("record %d: %+v vs %+v", i, f.Records[i], g.Records[i])
		}
	}
}

func TestFileRoundTripOnDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "exp01.dat")
	f := Synthesize(func(tt float64) float64 { return math.Exp(-tt) }, SynthesizeOptions{
		Name: "exp01.dat", Records: 50,
	})
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "exp01.dat" || g.NumRecords() != 50 {
		t.Errorf("read back: %s, %d records", g.Name, g.NumRecords())
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile("/nonexistent/file.dat"); err == nil {
		t.Error("missing file read succeeded")
	}
}

func TestSynthesizeDefaults(t *testing.T) {
	f := Synthesize(func(tt float64) float64 { return 1 }, SynthesizeOptions{Name: "d"})
	if f.NumRecords() != 3200 {
		t.Errorf("default records = %d, want 3200 (>3000 per the paper)", f.NumRecords())
	}
	if f.Records[0].T != 0 || f.Records[len(f.Records)-1].T != 1 {
		t.Errorf("default window: [%v, %v]", f.Records[0].T, f.Records[len(f.Records)-1].T)
	}
}

func TestSynthesizeNoiseDeterministic(t *testing.T) {
	mk := func(seed int64) *File {
		return Synthesize(func(tt float64) float64 { return tt }, SynthesizeOptions{
			Name: "n", Records: 64, Noise: 0.1, Seed: seed,
		})
	}
	a, b := mk(3), mk(3)
	c := mk(4)
	differ := false
	for i := range a.Records {
		if a.Records[i].Value != b.Records[i].Value {
			t.Fatalf("same seed differs at %d", i)
		}
		if a.Records[i].Value != c.Records[i].Value {
			differ = true
		}
	}
	if !differ {
		t.Error("different seeds produced identical noise")
	}
}

func TestSynthesizeNoiseMagnitude(t *testing.T) {
	f := Synthesize(func(tt float64) float64 { return 0 }, SynthesizeOptions{
		Name: "noise", Records: 5000, Noise: 0.5, Seed: 1,
	})
	var sum, sumSq float64
	for _, r := range f.Records {
		sum += r.Value
		sumSq += r.Value * r.Value
	}
	n := float64(f.NumRecords())
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.05 || math.Abs(std-0.5) > 0.05 {
		t.Errorf("noise stats: mean=%v std=%v, want ≈0 / 0.5", mean, std)
	}
}
