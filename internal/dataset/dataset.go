// Package dataset reads, writes and synthesizes the experimental data
// files of the parameter estimator. Each file holds the time evolution of
// one measured property for one rubber formulation — more than 3000
// records of the form ⟨t_i, property value⟩, one per line — exactly the
// format the paper's objective function consumes (§4.3). Sixteen such
// files, for different formulations cured at one temperature, drive the
// Table 2 experiments.
//
// The paper's files come from rheometer measurements of crosslink
// concentration; those are proprietary, so Synthesize produces
// functionally equivalent files by solving a ground-truth kinetic model
// and sampling its property curve with configurable record counts and
// noise. Varying record counts across files produces the per-file cost
// imbalance that the dynamic load balancer exploits.
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Record is one ⟨time, property value⟩ measurement.
type Record struct {
	T     float64
	Value float64
}

// File is one experimental data file in memory.
type File struct {
	// Name identifies the file (its base name on disk).
	Name string
	// Records are sorted by time.
	Records []Record
}

// NumRecords returns the record count (the objective's work measure).
func (f *File) NumRecords() int { return len(f.Records) }

// Times returns the time column.
func (f *File) Times() []float64 {
	ts := make([]float64, len(f.Records))
	for i, r := range f.Records {
		ts[i] = r.T
	}
	return ts
}

// Values returns the property column.
func (f *File) Values() []float64 {
	vs := make([]float64, len(f.Records))
	for i, r := range f.Records {
		vs[i] = r.Value
	}
	return vs
}

// Read parses a data file: one "t value" pair per line, '#' comments and
// blank lines ignored. Records are sorted by time on load.
func Read(r io.Reader, name string) (*File, error) {
	f := &File{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("dataset: %s:%d: want 2 fields, got %d", name, lineNo, len(fields))
		}
		t, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: %s:%d: bad time %q", name, lineNo, fields[0])
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: %s:%d: bad value %q", name, lineNo, fields[1])
		}
		f.Records = append(f.Records, Record{T: t, Value: v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", name, err)
	}
	if len(f.Records) == 0 {
		return nil, fmt.Errorf("dataset: %s: no records", name)
	}
	sort.Slice(f.Records, func(i, j int) bool { return f.Records[i].T < f.Records[j].T })
	return f, nil
}

// ReadFile reads a data file from disk.
func ReadFile(path string) (*File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return Read(fh, filepath.Base(path))
}

// Write emits the file in the on-disk format.
func (f *File) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s: %d records of <t, property value>\n", f.Name, len(f.Records))
	for _, r := range f.Records {
		fmt.Fprintf(bw, "%.10g %.10g\n", r.T, r.Value)
	}
	return bw.Flush()
}

// WriteFile writes the file to disk.
func (f *File) WriteFile(path string) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	return f.Write(fh)
}

// PropertyFunc maps a time to the true property value (typically obtained
// by solving a ground-truth kinetic model and reading off the crosslink
// concentration).
type PropertyFunc func(t float64) float64

// SynthesizeOptions shapes a synthetic experiment file.
type SynthesizeOptions struct {
	// Name is the file's identity.
	Name string
	// Records is the sample count; the paper's files carry >3000 records
	// (default 3200).
	Records int
	// T0 and T1 bound the sampled time window (defaults 0 and 1).
	T0, T1 float64
	// Noise is the standard deviation of additive Gaussian measurement
	// noise (0 = exact).
	Noise float64
	// Seed drives the noise generator.
	Seed int64
}

// Synthesize samples the property curve into a data file.
func Synthesize(property PropertyFunc, o SynthesizeOptions) *File {
	if o.Records <= 0 {
		o.Records = 3200
	}
	if o.T1 == o.T0 {
		o.T1 = o.T0 + 1
	}
	rng := rand.New(rand.NewSource(o.Seed))
	f := &File{Name: o.Name, Records: make([]Record, o.Records)}
	for i := 0; i < o.Records; i++ {
		t := o.T0 + (o.T1-o.T0)*float64(i)/float64(o.Records-1)
		v := property(t)
		if o.Noise > 0 {
			v += o.Noise * rng.NormFloat64()
		}
		f.Records[i] = Record{T: t, Value: v}
	}
	return f
}
