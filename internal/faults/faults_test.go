package faults_test

import (
	"errors"
	"testing"

	"rms/internal/estimator"
	"rms/internal/faults"
	"rms/internal/mpi"
	"rms/internal/ode"
)

// The plan must satisfy both injection seams.
var (
	_ mpi.Hook                = (*faults.Plan)(nil)
	_ estimator.FaultInjector = (*faults.Plan)(nil)
)

// Injected solve failures must look like real solver breakdowns so the
// retry policy treats them identically.
func TestInjectedErrorIsRetryable(t *testing.T) {
	if !errors.Is(faults.ErrInjected, ode.ErrStepTooSmall) {
		t.Fatal("ErrInjected does not wrap ode.ErrStepTooSmall")
	}
}

func TestFailFileAllAttempts(t *testing.T) {
	p := faults.NewPlan(1).FailFile(3, 2)
	for attempt := 0; attempt < 5; attempt++ {
		if err := p.FileSolve(2, 0, 3, attempt); !errors.Is(err, faults.ErrInjected) {
			t.Errorf("call 2 file 3 attempt %d: err = %v, want injected", attempt, err)
		}
	}
	// Other calls and files stay clean.
	if err := p.FileSolve(1, 0, 3, 0); err != nil {
		t.Errorf("call 1: err = %v", err)
	}
	if err := p.FileSolve(2, 0, 4, 0); err != nil {
		t.Errorf("file 4: err = %v", err)
	}
	if c := p.Counts(); c.FileFailures != 5 {
		t.Errorf("counts = %+v", c)
	}
}

func TestFlakyFileRecoversOnRetry(t *testing.T) {
	p := faults.NewPlan(1).FlakyFile(0, 0, 2)
	for attempt, want := range []bool{true, true, false, false} {
		err := p.FileSolve(0, 0, 0, attempt)
		if got := err != nil; got != want {
			t.Errorf("attempt %d: injected = %v, want %v", attempt, got, want)
		}
	}
}

// Rate-based injection is a pure function of (seed, call, file): the
// same plan parameters give the same schedule regardless of the order
// ranks consult it, and the empirical rate tracks the configured one.
func TestFailRateDeterministicAndCalibrated(t *testing.T) {
	decide := func(seed int64) []bool {
		p := faults.NewPlan(seed).FailRate(0.3)
		out := make([]bool, 0, 1000)
		for call := 0; call < 10; call++ {
			for file := 0; file < 100; file++ {
				out = append(out, p.FileSolve(call, 0, file, 0) != nil)
			}
		}
		return out
	}
	a, b := decide(42), decide(42)
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical plans", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails < 200 || fails > 400 {
		t.Errorf("injected %d/1000 at rate 0.3", fails)
	}
	c := decide(43)
	diff := 0
	for i := range a {
		if a[i] != c[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds gave identical schedules")
	}
	// Retries of a rate-failed solve succeed (transient fault model).
	p := faults.NewPlan(42).FailRate(1)
	if err := p.FileSolve(0, 0, 0, 0); err == nil {
		t.Error("rate 1 did not inject")
	}
	if err := p.FileSolve(0, 0, 0, 1); err != nil {
		t.Errorf("retry still injected: %v", err)
	}
}

// Keyed crash/stall triggers count collectives cumulatively per rank
// across communicator runs and fire exactly once.
func TestCrashRankOneShotAcrossRuns(t *testing.T) {
	p := faults.NewPlan(1).CrashRank(1, 2)
	// First run: rank 1 enters 2 collectives (cumulative 0 and 1).
	for seq := 0; seq < 2; seq++ {
		if act := p.AtCollective(1, seq); act != mpi.ActProceed {
			t.Fatalf("run 1 seq %d: action = %v", seq, act)
		}
	}
	// Second run: rank 1's first entry is cumulative #2 — the trigger.
	if act := p.AtCollective(1, 0); act != mpi.ActCrash {
		t.Fatal("cumulative collective 2 did not crash")
	}
	// Consumed: the same cumulative position never re-fires.
	for seq := 1; seq < 4; seq++ {
		if act := p.AtCollective(1, seq); act != mpi.ActProceed {
			t.Fatalf("post-crash seq %d: action = %v", seq, act)
		}
	}
	if c := p.Counts(); c.Crashes != 1 {
		t.Errorf("counts = %+v", c)
	}
}

// End to end through the runtime: a planned crash kills exactly the
// planned rank at the planned collective, and a planned stall becomes a
// watchdog-diagnosed deadlock.
func TestPlanDrivesRuntime(t *testing.T) {
	p := faults.NewPlan(7).CrashRank(2, 1)
	rep := mpi.RunErr(4, mpi.RunConfig{Hook: p}, func(c *mpi.Comm) error {
		c.Barrier()
		c.Barrier()
		return nil
	})
	if got := rep.Culprits(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("culprits = %v, want [2]", got)
	}
	var re *mpi.RankError
	if !errors.As(rep.Errs[2], &re) {
		t.Errorf("rank 2 error = %v", rep.Errs[2])
	}
	if c := p.Counts(); c.Crashes != 1 {
		t.Errorf("counts = %+v", c)
	}

	p2 := faults.NewPlan(7).StallRank(0, 0)
	rep2 := mpi.RunErr(3, mpi.RunConfig{Hook: p2, Watchdog: 100_000_000}, func(c *mpi.Comm) error {
		c.Barrier()
		return nil
	})
	if !rep2.WatchdogFired {
		t.Fatalf("stall not diagnosed; errs = %v", rep2.Errs)
	}
	if got := rep2.Culprits(); len(got) != 1 || got[0] != 0 {
		t.Errorf("culprits = %v, want [0]", got)
	}
}
