package faults

import (
	"errors"
	"fmt"
	"sort"

	"rms/internal/ode"
)

// Chaos fault kinds for the robustness layer's degradation ladders and
// watchdogs. Hang and timeout injections exercise the per-attempt budget
// watchdog; pool faults exercise the pool→serial ladder; slow lanes feed
// mispredictions into the sched cost model to exercise ewma→static.

// ErrInjectedHang marks a solve attempt that must block until its attempt
// budget trips. The injector itself never blocks (a mutex-holding sleep
// would serialize every lane); the estimator recognizes this sentinel and
// parks the attempt on its budget's Done channel, exactly as a genuinely
// wedged solver would look to the watchdog.
var ErrInjectedHang = errors.New("faults: injected hang")

// ErrInjectedTimeout marks a solve attempt that reports an attempt-budget
// timeout. It wraps ode.ErrTooManySteps so the retry policy treats it as
// a transient solver breakdown, but keeps its own identity so telemetry
// can count timeouts apart from ordinary injected failures.
var ErrInjectedTimeout = fmt.Errorf("faults: injected solve timeout: %w", ode.ErrTooManySteps)

// HangFile schedules the first attempt of solving the given file at the
// given objective call to hang until its attempt budget trips; retries
// proceed normally — the watchdog-recovers case.
func (p *Plan) HangFile(file, call int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hang[key{file, call}] = 1
	return p
}

// TimeoutFile schedules the first attempt of solving the given file at
// the given objective call to fail with an injected timeout; retries
// proceed normally.
func (p *Plan) TimeoutFile(file, call int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.timeout[key{file, call}] = 1
	return p
}

// FailPool schedules the parallel-pool sweep of the given objective call
// to fail, forcing the estimator down the pool→serial ladder. One-shot.
func (p *Plan) FailPool(call int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pool[call] = true
	return p
}

// PoolFault reports (and consumes) a scheduled pool failure for this
// objective call.
func (p *Plan) PoolFault(call int) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pool[call] {
		delete(p.pool, call)
		p.counts.PoolFaults++
		p.log.Warn("inject", "injected pool fault", "call", call)
		return true
	}
	return false
}

// SlowLane schedules a persistent slowdown factor (≥ 1) for every solve
// executed by the given {rank, lane} — the chronically slow worker the
// sched cost model cannot predict.
func (p *Plan) SlowLane(rank, lane int, factor float64) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	if factor < 1 {
		factor = 1
	}
	p.slow[key{rank, lane}] = factor
	return p
}

// SlowLaneJitter makes every {rank, lane, call} independently slow with
// the given probability, by a factor drawn uniformly from [1, maxFactor].
// Decisions come from per-lane seeded streams (see laneUnit): each
// {rank, lane} owns an independent derived stream, and draws are keyed by
// the objective call, so the schedule is identical no matter how lanes
// interleave — chaos runs stay deterministic under -race.
func (p *Plan) SlowLaneJitter(rate, maxFactor float64) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.slowRate = rate
	if maxFactor < 1 {
		maxFactor = 1
	}
	p.slowMax = maxFactor
	return p
}

// LaneSlowdown returns the multiplicative cost inflation for a solve run
// by {rank, lane} during the given objective call (1 = no slowdown).
// Persistent SlowLane factors stack with jittered draws.
func (p *Plan) LaneSlowdown(call, rank, lane int) float64 {
	if p == nil {
		return 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	f := 1.0
	if v, ok := p.slow[key{rank, lane}]; ok {
		f = v
		p.counts.SlowLanes++
	}
	if p.slowRate > 0 {
		if p.laneUnit(rank, lane, int64(call), 0) < p.slowRate {
			f *= 1 + (p.slowMax-1)*p.laneUnit(rank, lane, int64(call), 1)
			p.counts.SlowLanes++
		}
	}
	return f
}

// laneUnit draws a uniform [0, 1) value from the {rank, lane} stream at
// the position keyed by ids. Each lane's stream seed is derived by mixing
// the plan seed with the lane coordinates, so streams are independent per
// lane; positions are keyed (not counted), so a draw's value depends only
// on what is being decided, never on how many decisions other lanes made
// first. Callers hold p.mu.
func (p *Plan) laneUnit(rank, lane int, ids ...int64) float64 {
	parts := append([]int64{p.seed, 0x5157, int64(rank), int64(lane)}, ids...)
	return hashUnit(parts...)
}

// PlanState is the JSON-serializable snapshot of a Plan's mutable state:
// pending (unfired) schedules, cumulative collective counters, fired
// counts and the rate parameters. Restoring it into a fresh Plan aligns
// every future injection with where the snapshotted run left off — the
// checkpoint/resume contract for chaos runs. All slices are sorted so the
// encoding is canonical (content-hash stable).
type PlanState struct {
	Seed     int64        `json:"seed"`
	Rate     float64      `json:"rate,omitempty"`
	SlowRate float64      `json:"slow_rate,omitempty"`
	SlowMax  float64      `json:"slow_max,omitempty"`
	Crash    []StateEntry `json:"crash,omitempty"`
	Stall    []StateEntry `json:"stall,omitempty"`
	FileFail []StateEntry `json:"file_fail,omitempty"`
	Hang     []StateEntry `json:"hang,omitempty"`
	Timeout  []StateEntry `json:"timeout,omitempty"`
	Pool     []int        `json:"pool,omitempty"`
	Slow     []SlowEntry  `json:"slow,omitempty"`
	Seen     []StateEntry `json:"seen,omitempty"`
	Counts   Counts       `json:"counts"`
}

// StateEntry is one keyed schedule entry: {A, B} is the key (rank/nth or
// file/call; B unused for Seen), N the attempt count or counter value.
type StateEntry struct {
	A int `json:"a"`
	B int `json:"b,omitempty"`
	N int `json:"n,omitempty"`
}

// SlowEntry is one persistent slow-lane factor.
type SlowEntry struct {
	Rank   int     `json:"rank"`
	Lane   int     `json:"lane"`
	Factor float64 `json:"factor"`
}

func sortEntries(es []StateEntry) []StateEntry {
	sort.Slice(es, func(i, j int) bool {
		if es[i].A != es[j].A {
			return es[i].A < es[j].A
		}
		return es[i].B < es[j].B
	})
	return es
}

func boolEntries(m map[key]bool) []StateEntry {
	var out []StateEntry
	for k := range m {
		out = append(out, StateEntry{A: k.a, B: k.b, N: 1})
	}
	return sortEntries(out)
}

func intEntries(m map[key]int) []StateEntry {
	var out []StateEntry
	for k, n := range m {
		out = append(out, StateEntry{A: k.a, B: k.b, N: n})
	}
	return sortEntries(out)
}

// Snapshot captures the plan's complete mutable state.
func (p *Plan) Snapshot() PlanState {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PlanState{
		Seed: p.seed, Rate: p.rate,
		SlowRate: p.slowRate, SlowMax: p.slowMax,
		Crash:    boolEntries(p.crash),
		Stall:    boolEntries(p.stall),
		FileFail: intEntries(p.fileFail),
		Hang:     intEntries(p.hang),
		Timeout:  intEntries(p.timeout),
		Counts:   p.counts,
	}
	for c := range p.pool {
		st.Pool = append(st.Pool, c)
	}
	sort.Ints(st.Pool)
	for k, f := range p.slow {
		st.Slow = append(st.Slow, SlowEntry{Rank: k.a, Lane: k.b, Factor: f})
	}
	sort.Slice(st.Slow, func(i, j int) bool {
		if st.Slow[i].Rank != st.Slow[j].Rank {
			return st.Slow[i].Rank < st.Slow[j].Rank
		}
		return st.Slow[i].Lane < st.Slow[j].Lane
	})
	for r, n := range p.seen {
		st.Seen = append(st.Seen, StateEntry{A: r, N: n})
	}
	st.Seen = sortEntries(st.Seen)
	return st
}

// FromState rebuilds a Plan from a snapshot; the restored plan's future
// injections fire exactly as the snapshotted plan's would have.
func FromState(st PlanState) *Plan {
	p := NewPlan(st.Seed)
	p.rate = st.Rate
	p.slowRate = st.SlowRate
	p.slowMax = st.SlowMax
	for _, e := range st.Crash {
		p.crash[key{e.A, e.B}] = true
	}
	for _, e := range st.Stall {
		p.stall[key{e.A, e.B}] = true
	}
	for _, e := range st.FileFail {
		p.fileFail[key{e.A, e.B}] = e.N
	}
	for _, e := range st.Hang {
		p.hang[key{e.A, e.B}] = e.N
	}
	for _, e := range st.Timeout {
		p.timeout[key{e.A, e.B}] = e.N
	}
	for _, c := range st.Pool {
		p.pool[c] = true
	}
	for _, e := range st.Slow {
		p.slow[key{e.Rank, e.Lane}] = e.Factor
	}
	for _, e := range st.Seen {
		p.seen[e.A] = e.N
	}
	p.counts = st.Counts
	return p
}
