package faults

import (
	"encoding/json"
	"errors"
	"sync"
	"testing"
)

func TestHangAndTimeoutSchedules(t *testing.T) {
	p := NewPlan(1).HangFile(3, 2).TimeoutFile(5, 2)
	if err := p.FileSolve(2, 0, 3, 0); !errors.Is(err, ErrInjectedHang) {
		t.Fatalf("attempt 0 of hang file: %v", err)
	}
	if err := p.FileSolve(2, 0, 3, 1); err != nil {
		t.Fatalf("retry of hang file must proceed: %v", err)
	}
	if err := p.FileSolve(2, 0, 5, 0); !errors.Is(err, ErrInjectedTimeout) {
		t.Fatalf("attempt 0 of timeout file: %v", err)
	}
	if err := p.FileSolve(1, 0, 3, 0); err != nil {
		t.Fatalf("other calls must be clean: %v", err)
	}
	c := p.Counts()
	if c.Hangs != 1 || c.Timeouts != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestPoolFaultIsOneShot(t *testing.T) {
	p := NewPlan(1).FailPool(4)
	if p.PoolFault(3) {
		t.Fatal("unscheduled call faulted")
	}
	if !p.PoolFault(4) {
		t.Fatal("scheduled pool fault did not fire")
	}
	if p.PoolFault(4) {
		t.Fatal("pool fault fired twice")
	}
	var nilPlan *Plan
	if nilPlan.PoolFault(0) {
		t.Fatal("nil plan faulted")
	}
}

// Per-lane streams must make slowdown decisions independent of the order
// in which lanes (goroutines) reach the injection point.
func TestLaneSlowdownScheduleIndependent(t *testing.T) {
	draw := func(order []int) map[int]float64 {
		p := NewPlan(42).SlowLaneJitter(0.5, 4)
		out := make(map[int]float64)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for _, lane := range order {
			wg.Add(1)
			go func(l int) {
				defer wg.Done()
				for call := 0; call < 8; call++ {
					f := p.LaneSlowdown(call, 0, l)
					mu.Lock()
					out[l*100+call] = f
					mu.Unlock()
				}
			}(lane)
		}
		wg.Wait()
		return out
	}
	a := draw([]int{0, 1, 2, 3})
	b := draw([]int{3, 2, 1, 0})
	if len(a) != len(b) {
		t.Fatalf("draw counts differ: %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("lane %d call %d: %g vs %g under different interleavings", k/100, k%100, v, b[k])
		}
	}
	// Distinct lanes must see distinct streams.
	if a[0*100+0] == a[1*100+0] && a[0*100+1] == a[1*100+1] && a[0*100+2] == a[1*100+2] {
		t.Fatal("lanes 0 and 1 drew identical streams")
	}
}

func TestPersistentSlowLaneStacks(t *testing.T) {
	p := NewPlan(7).SlowLane(1, 2, 3.5)
	if f := p.LaneSlowdown(0, 1, 2); f != 3.5 {
		t.Fatalf("factor = %g, want 3.5", f)
	}
	if f := p.LaneSlowdown(0, 0, 0); f != 1 {
		t.Fatalf("unscheduled lane slowed: %g", f)
	}
	if p.Counts().SlowLanes == 0 {
		t.Fatal("slow-lane injection not counted")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	p := NewPlan(99).
		CrashRank(1, 4).StallRank(2, 3).
		FailFile(5, 6).FlakyFile(7, 8, 2).
		HangFile(1, 2).TimeoutFile(3, 4).
		FailPool(9).SlowLane(0, 1, 2.5).
		FailRate(0.1).SlowLaneJitter(0.2, 3)

	// Fire part of the schedule so the snapshot holds real progress.
	p.AtCollective(1, 0) // seen[1] = 1
	if err := p.FileSolve(2, 0, 1, 0); !errors.Is(err, ErrInjectedHang) {
		t.Fatal("hang did not fire")
	}
	if !p.PoolFault(9) {
		t.Fatal("pool fault did not fire")
	}

	st := p.Snapshot()
	q := FromState(st)

	// The restored plan continues exactly where the original left off:
	// consumed one-shots stay consumed, pending ones still fire.
	if q.PoolFault(9) {
		t.Fatal("consumed pool fault re-fired after restore")
	}
	if err := q.FileSolve(2, 0, 1, 1); err != nil {
		t.Fatalf("hang retry after restore: %v", err)
	}
	if err := q.FileSolve(6, 0, 5, 3); !errors.Is(err, ErrInjected) {
		t.Fatal("pending FailFile lost in restore")
	}
	// seen[1] resumed at 1: the original and a restored copy must agree on
	// exactly which upcoming collective fires the scheduled crash.
	p2 := FromState(p.Snapshot())
	for n := 2; n < 6; n++ {
		a, b := p.AtCollective(1, 0), p2.AtCollective(1, 0)
		if a != b {
			t.Fatalf("collective %d: original %v vs restored %v", n, a, b)
		}
	}
	if p.Counts().Crashes != p2.Counts().Crashes {
		t.Fatal("crash counts diverged after restore")
	}

	// Snapshot encoding is canonical: two snapshots of equal state encode
	// byte-identically (the content-hash requirement).
	b1, _ := json.Marshal(p.Snapshot())
	b2, _ := json.Marshal(FromState(p.Snapshot()).Snapshot())
	if string(b1) != string(b2) {
		t.Fatalf("snapshot encoding not canonical:\n%s\n%s", b1, b2)
	}

	// Jittered slow-lane decisions must agree across the restore.
	for call := 0; call < 6; call++ {
		if p.LaneSlowdown(call, 0, 3) != p2.LaneSlowdown(call, 0, 3) {
			t.Fatalf("slow-lane draw diverged at call %d", call)
		}
	}
}
