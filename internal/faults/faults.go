// Package faults provides deterministic fault injection for the suite's
// fault-tolerance layer. A Plan is a seeded, reproducible failure
// schedule consulted at well-defined injection points:
//
//   - collective entries in the simulated MPI runtime (crash or stall a
//     specific rank at its nth collective — Plan implements mpi.Hook);
//   - per-file solver calls in the parallel estimator (fail file i at
//     objective call j, or fail a seeded pseudo-random fraction of all
//     solves — Plan implements the estimator's FaultInjector interface).
//
// Every injection is deterministic: keyed injections fire exactly once
// at their trigger, and rate-based injections decide by hashing
// (seed, call, file, attempt), so the schedule does not depend on the
// order in which concurrent ranks reach the injection points. That
// determinism is what lets the recovery paths — retry/penalty, rank
// shrink-and-retry, the hang watchdog — be exercised by ordinary unit
// tests instead of hoped-for in production.
package faults

import (
	"fmt"
	"sync"

	"rms/internal/mpi"
	"rms/internal/ode"
	"rms/internal/telemetry"
)

// ErrInjected is the error injected file-solve failures return. It wraps
// ode.ErrStepTooSmall so the estimator's retry policy treats an injected
// failure exactly like a real solver breakdown.
var ErrInjected = fmt.Errorf("faults: injected solver failure: %w", ode.ErrStepTooSmall)

// Counts reports how many injections a Plan has fired, by kind.
type Counts struct {
	Crashes, Stalls, FileFailures int
	// Hangs, Timeouts, PoolFaults and SlowLanes count the robustness
	// layer's chaos kinds: solves that block until their attempt budget
	// trips, solves that report a watchdog timeout, parallel-pool sweeps
	// forced to degrade to serial, and lane-slowdown injections.
	Hangs, Timeouts, PoolFaults, SlowLanes int
}

type key struct{ a, b int }

// Plan is a deterministic fault schedule. The zero value injects
// nothing; NewPlan seeds the rate-based decisions. A Plan is safe for
// concurrent use by all ranks.
type Plan struct {
	mu sync.Mutex

	seed int64
	// crash/stall are keyed by {rank, nth-collective-of-that-rank},
	// counted cumulatively across every Run the plan observes; fired
	// entries are consumed (one-shot), so a recovered communicator does
	// not re-trip the same fault.
	crash map[key]bool
	stall map[key]bool
	// seen[rank] counts collective entries per rank across runs.
	seen map[int]int
	// fileFail is keyed by {file, objective call}; the value is how many
	// leading attempts fail (allAttempts = every attempt).
	fileFail map[key]int
	rate     float64

	// Robustness-layer chaos kinds (see robust.go): hang/timeout are
	// keyed like fileFail; pool is keyed by objective call; slow holds
	// persistent per-{rank, lane} slowdown factors; slowRate/slowMax
	// drive jittered slow-lane decisions drawn from per-lane streams.
	hang     map[key]int
	timeout  map[key]int
	pool     map[int]bool
	slow     map[key]float64
	slowRate float64
	slowMax  float64

	// log, when set, records every fired injection in the flight
	// recorder — the "what was injected when" half of a chaos run's
	// post-mortem timeline.
	log *telemetry.Logger

	counts Counts
}

// allAttempts makes a keyed file failure persist through every retry.
const allAttempts = -1

// NewPlan returns an empty plan; seed drives the rate-based injections.
func NewPlan(seed int64) *Plan {
	return &Plan{
		seed:     seed,
		crash:    make(map[key]bool),
		stall:    make(map[key]bool),
		seen:     make(map[int]int),
		fileFail: make(map[key]int),
		hang:     make(map[key]int),
		timeout:  make(map[key]int),
		pool:     make(map[int]bool),
		slow:     make(map[key]float64),
	}
}

// CrashRank schedules a one-shot panic on the given rank as it enters
// its nth collective (0-based, counted cumulatively across runs).
func (p *Plan) CrashRank(rank, nthCollective int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.crash[key{rank, nthCollective}] = true
	return p
}

// StallRank schedules a one-shot stall (block until the communicator
// dies) on the given rank as it enters its nth collective — the injected
// deadlock the mpi watchdog diagnoses.
func (p *Plan) StallRank(rank, nthCollective int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stall[key{rank, nthCollective}] = true
	return p
}

// FailFile schedules the solve of the given file to fail at the given
// objective call, on every retry attempt — the solve is unsalvageable
// and must end in a penalty residual.
func (p *Plan) FailFile(file, call int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fileFail[key{file, call}] = allAttempts
	return p
}

// FlakyFile schedules the solve of the given file to fail its first
// `attempts` attempts at the given objective call, then succeed — the
// retry policy's recoverable case.
func (p *Plan) FlakyFile(file, call, attempts int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fileFail[key{file, call}] = attempts
	return p
}

// FailRate makes every first solve attempt fail independently with the
// given probability, decided by hashing (seed, call, file), so the
// outcome is reproducible regardless of rank scheduling. Retries of a
// rate-failed solve succeed — rate injection models transient faults.
func (p *Plan) FailRate(rate float64) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rate = rate
	return p
}

// WithLogger routes fired-injection events to l (nil disables) and
// returns the plan.
func (p *Plan) WithLogger(l *telemetry.Logger) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.log = l
	return p
}

// Counts returns the number of injections fired so far.
func (p *Plan) Counts() Counts {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts
}

// AtCollective implements mpi.Hook: it fires any crash or stall
// scheduled for this rank's cumulative nth collective entry. The seq
// argument (per-Run) is ignored in favor of the plan's cumulative
// counter so schedules span shrink-and-retry re-runs without re-firing.
func (p *Plan) AtCollective(rank, seq int) mpi.HookAction {
	p.mu.Lock()
	defer p.mu.Unlock()
	nth := p.seen[rank]
	p.seen[rank]++
	k := key{rank, nth}
	if p.crash[k] {
		delete(p.crash, k)
		p.counts.Crashes++
		p.log.Warn("inject", "injected rank crash", "rank", rank, "nth", nth)
		return mpi.ActCrash
	}
	if p.stall[k] {
		delete(p.stall, k)
		p.counts.Stalls++
		p.log.Warn("inject", "injected rank stall", "rank", rank, "nth", nth)
		return mpi.ActStall
	}
	return mpi.ActProceed
}

// FileSolve implements the estimator's FaultInjector interface: it is
// consulted before attempt number `attempt` (0-based) of solving file
// `file` during objective call `call` on rank `rank`, and returns
// ErrInjected when the schedule says this attempt fails.
func (p *Plan) FileSolve(call, rank, file, attempt int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n, ok := p.hang[key{file, call}]; ok {
		if n == allAttempts || attempt < n {
			p.counts.Hangs++
			p.logSolve("injected solve hang", call, rank, file, attempt)
			return ErrInjectedHang
		}
	}
	if n, ok := p.timeout[key{file, call}]; ok {
		if n == allAttempts || attempt < n {
			p.counts.Timeouts++
			p.logSolve("injected solve timeout", call, rank, file, attempt)
			return ErrInjectedTimeout
		}
	}
	if n, ok := p.fileFail[key{file, call}]; ok {
		if n == allAttempts || attempt < n {
			p.counts.FileFailures++
			p.logSolve("injected solve failure", call, rank, file, attempt)
			return ErrInjected
		}
	}
	if p.rate > 0 && attempt == 0 {
		if hashUnit(p.seed, int64(call), int64(file)) < p.rate {
			p.counts.FileFailures++
			p.logSolve("injected solve failure (rate)", call, rank, file, attempt)
			return ErrInjected
		}
	}
	return nil
}

// logSolve records one fired per-solve injection. Called with p.mu held.
func (p *Plan) logSolve(msg string, call, rank, file, attempt int) {
	p.log.Warn("inject", msg,
		"call", call, "rank", rank, "file", file, "attempt", attempt)
}

// hashUnit maps (seed, call, file) to a uniform value in [0, 1) with a
// splitmix64-style mixer — deterministic and order-independent.
func hashUnit(parts ...int64) float64 {
	x := uint64(0x9e3779b97f4a7c15)
	for _, p := range parts {
		x ^= uint64(p) + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)
		x += 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return float64(x>>11) / float64(1<<53)
}

var _ mpi.Hook = (*Plan)(nil)
