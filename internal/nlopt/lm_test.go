package nlopt

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearFit(t *testing.T) {
	// Fit y = a + b·t to exact data; least squares must recover (2, -3).
	ts := []float64{0, 1, 2, 3, 4}
	obs := make([]float64, len(ts))
	for i, tt := range ts {
		obs[i] = 2 - 3*tt
	}
	f := func(x, r []float64) error {
		for i, tt := range ts {
			r[i] = x[0] + x[1]*tt - obs[i]
		}
		return nil
	}
	res, err := BoundedLeastSquares(f, []float64{0, 0},
		[]float64{-10, -10}, []float64{10, 10}, len(ts), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-6 || math.Abs(res.X[1]+3) > 1e-6 {
		t.Errorf("X = %v, want [2 -3]", res.X)
	}
	if res.RNorm > 1e-6 {
		t.Errorf("RNorm = %v", res.RNorm)
	}
	if !res.Converged {
		t.Error("did not converge")
	}
}

func TestRosenbrock(t *testing.T) {
	// Rosenbrock as least squares: r = (10(x2 - x1²), 1 - x1); min at (1,1).
	f := func(x, r []float64) error {
		r[0] = 10 * (x[1] - x[0]*x[0])
		r[1] = 1 - x[0]
		return nil
	}
	res, err := BoundedLeastSquares(f, []float64{-1.2, 1},
		[]float64{-5, -5}, []float64{5, 5}, 2, Options{MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-5 || math.Abs(res.X[1]-1) > 1e-5 {
		t.Errorf("X = %v, want [1 1] (rnorm %g)", res.X, res.RNorm)
	}
}

func TestExponentialRateRecovery(t *testing.T) {
	// The estimator's core use case: recover a decay rate from samples of
	// y = e^{-k t} with k = 1.7.
	ts := []float64{0.1, 0.3, 0.5, 1, 1.5, 2, 3}
	kTrue := 1.7
	obs := make([]float64, len(ts))
	for i, tt := range ts {
		obs[i] = math.Exp(-kTrue * tt)
	}
	f := func(x, r []float64) error {
		for i, tt := range ts {
			r[i] = math.Exp(-x[0]*tt) - obs[i]
		}
		return nil
	}
	res, err := BoundedLeastSquares(f, []float64{0.5},
		[]float64{0.01}, []float64{10}, len(ts), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-kTrue) > 1e-5 {
		t.Errorf("k = %v, want %v", res.X[0], kTrue)
	}
}

func TestActiveBound(t *testing.T) {
	// Minimize (x-3)²; with upper bound 2 the solution pins at 2.
	f := func(x, r []float64) error {
		r[0] = x[0] - 3
		return nil
	}
	res, err := BoundedLeastSquares(f, []float64{0},
		[]float64{-1}, []float64{2}, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.X[0] != 2 {
		t.Errorf("X = %v, want pinned at 2", res.X)
	}
	if !res.Active[0] {
		t.Error("bound not reported active")
	}
}

func TestStartOutsideBoundsIsClamped(t *testing.T) {
	f := func(x, r []float64) error {
		r[0] = x[0] - 1
		return nil
	}
	res, err := BoundedLeastSquares(f, []float64{100},
		[]float64{0}, []float64{5}, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-6 {
		t.Errorf("X = %v, want 1", res.X)
	}
}

func TestFixedVariable(t *testing.T) {
	// lower == upper freezes a variable; the other still optimizes.
	f := func(x, r []float64) error {
		r[0] = x[0] - 7
		r[1] = x[1] - 1
		return nil
	}
	res, err := BoundedLeastSquares(f, []float64{4, 0},
		[]float64{4, -5}, []float64{4, 5}, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.X[0] != 4 {
		t.Errorf("frozen variable moved: %v", res.X)
	}
	if math.Abs(res.X[1]-1) > 1e-6 {
		t.Errorf("free variable = %v, want 1", res.X[1])
	}
}

func TestBadBounds(t *testing.T) {
	f := func(x, r []float64) error { r[0] = x[0]; return nil }
	if _, err := BoundedLeastSquares(f, []float64{0}, []float64{1}, []float64{-1}, 1, Options{}); !errors.Is(err, ErrBadBounds) {
		t.Errorf("err = %v, want ErrBadBounds", err)
	}
	if _, err := BoundedLeastSquares(f, []float64{0}, []float64{0, 0}, []float64{1}, 1, Options{}); !errors.Is(err, ErrBadBounds) {
		t.Errorf("err = %v, want ErrBadBounds", err)
	}
	if _, err := BoundedLeastSquares(f, []float64{0}, []float64{0}, []float64{1}, 0, Options{}); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestResidualErrorPropagates(t *testing.T) {
	boom := errors.New("solver blew up")
	f := func(x, r []float64) error { return boom }
	if _, err := BoundedLeastSquares(f, []float64{0}, []float64{-1}, []float64{1}, 1, Options{}); !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
}

// Property: random overdetermined linear systems are solved to the normal
// equations' accuracy when the solution is interior.
func TestRandomLinearLeastSquares(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := n + 1 + rng.Intn(5)
		a := make([][]float64, m)
		xTrue := make([]float64, n)
		for j := range xTrue {
			xTrue[j] = rng.NormFloat64()
		}
		b := make([]float64, m)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.NormFloat64()
			}
			a[i][i%n] += 2 // keep the column space well conditioned
			for j := range a[i] {
				b[i] += a[i][j] * xTrue[j]
			}
		}
		resid := func(x, r []float64) error {
			for i := range r {
				s := -b[i]
				for j := range x {
					s += a[i][j] * x[j]
				}
				r[i] = s
			}
			return nil
		}
		lo := make([]float64, n)
		hi := make([]float64, n)
		for j := range lo {
			lo[j], hi[j] = -50, 50
		}
		res, err := BoundedLeastSquares(resid, make([]float64, n), lo, hi, m, Options{})
		if err != nil {
			return false
		}
		for j := range xTrue {
			if math.Abs(res.X[j]-xTrue[j]) > 1e-4 {
				t.Logf("seed %d: X=%v want %v", seed, res.X, xTrue)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Multi-parameter kinetics-style recovery with noise stays near truth.
func TestNoisyRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	kTrue := []float64{0.8, 2.5}
	var ts []float64
	for i := 0; i < 40; i++ {
		ts = append(ts, 0.05*float64(i+1))
	}
	obs := make([]float64, len(ts))
	for i, tt := range ts {
		obs[i] = math.Exp(-kTrue[0]*tt) + 0.5*math.Exp(-kTrue[1]*tt) + 1e-4*rng.NormFloat64()
	}
	f := func(x, r []float64) error {
		for i, tt := range ts {
			r[i] = math.Exp(-x[0]*tt) + 0.5*math.Exp(-x[1]*tt) - obs[i]
		}
		return nil
	}
	res, err := BoundedLeastSquares(f, []float64{0.3, 4},
		[]float64{0.01, 0.01}, []float64{10, 10}, len(ts), Options{MaxIter: 400})
	if err != nil {
		t.Fatal(err)
	}
	for j := range kTrue {
		if math.Abs(res.X[j]-kTrue[j]) > 0.05 {
			t.Errorf("k[%d] = %v, want ≈ %v (%s)", j, res.X[j], kTrue[j],
				fmt.Sprintf("rnorm=%g iters=%d", res.RNorm, res.Iterations))
		}
	}
}

func TestRecordHistory(t *testing.T) {
	f := func(x, r []float64) error {
		r[0] = x[0]*x[0] - 2 // sqrt(2)
		return nil
	}
	res, err := BoundedLeastSquares(f, []float64{3}, []float64{0}, []float64{10}, 1,
		Options{RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 {
		t.Fatal("no history recorded")
	}
	// The trace is non-increasing (LM only accepts improvements).
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1]+1e-12 {
			t.Errorf("history rose at %d: %v -> %v", i, res.History[i-1], res.History[i])
		}
	}
	if math.Abs(res.X[0]-math.Sqrt2) > 1e-6 {
		t.Errorf("x = %v, want sqrt(2)", res.X[0])
	}
	// Without the flag the trace stays empty.
	res2, _ := BoundedLeastSquares(f, []float64{3}, []float64{0}, []float64{10}, 1, Options{})
	if len(res2.History) != 0 {
		t.Errorf("history recorded without the flag: %v", res2.History)
	}
}

// TestRankDeficientJacobian: two perfectly correlated parameters make
// JᵀJ singular; the QR fallback still finds a minimizing point.
func TestRankDeficientJacobian(t *testing.T) {
	f := func(x, r []float64) error {
		// Only x[0]+x[1] is observable.
		s := x[0] + x[1]
		r[0] = s - 3
		r[1] = 2 * (s - 3)
		return nil
	}
	res, err := BoundedLeastSquares(f, []float64{0, 0},
		[]float64{-10, -10}, []float64{10, 10}, 2, Options{MaxIter: 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]+res.X[1]-3) > 1e-5 {
		t.Errorf("x0+x1 = %v, want 3 (rnorm %g)", res.X[0]+res.X[1], res.RNorm)
	}
}

func TestNonFiniteAtStart(t *testing.T) {
	f := func(x, r []float64) error {
		r[0] = math.NaN()
		return nil
	}
	_, err := BoundedLeastSquares(f, []float64{0}, []float64{-1}, []float64{1}, 1, Options{})
	if !errors.Is(err, ErrNonFinite) {
		t.Errorf("err = %v, want ErrNonFinite", err)
	}
}

func TestNonFiniteDerivativeColumn(t *testing.T) {
	// Finite at the start, NaN under the Jacobian's forward perturbation:
	// a poisoned derivative must fail loudly, not corrupt the step.
	f := func(x, r []float64) error {
		if x[0] > 4 {
			r[0] = math.NaN()
		} else {
			r[0] = x[0] - 3
		}
		return nil
	}
	_, err := BoundedLeastSquares(f, []float64{4}, []float64{0}, []float64{10}, 1, Options{})
	if !errors.Is(err, ErrNonFinite) {
		t.Errorf("err = %v, want ErrNonFinite", err)
	}
}

// A transient fault: the residual returns NaN for two evaluations and
// then recovers. The optimizer must route around it (grow the damping,
// shorten the step) and still reach the optimum.
func TestTransientNaNTrialRecovered(t *testing.T) {
	evals := 0
	f := func(x, r []float64) error {
		evals++
		// Eval 1 is the start, eval 2 the 1-parameter Jacobian column,
		// evals 3-4 the first two trial points — poison those.
		if evals == 3 || evals == 4 {
			r[0] = math.NaN()
			return nil
		}
		r[0] = x[0] - 3
		return nil
	}
	res, err := BoundedLeastSquares(f, []float64{4}, []float64{0}, []float64{10}, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-3) > 1e-6 {
		t.Errorf("X = %v, want 3 (rnorm %g)", res.X, res.RNorm)
	}
	if !res.Converged {
		t.Error("did not converge through the transient fault")
	}
}

// A persistent NaN wall between the start and the optimum: the
// optimizer must approach the wall from the finite side, never accept a
// non-finite point, and never report the wall itself as a NaN result.
func TestNaNWallNeverAccepted(t *testing.T) {
	const wall = 3.9
	f := func(x, r []float64) error {
		if x[0] < wall {
			r[0] = math.NaN()
			return nil
		}
		r[0] = x[0] - 3
		return nil
	}
	res, err := BoundedLeastSquares(f, []float64{4}, []float64{0}, []float64{10}, 1,
		Options{MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.RNorm) || math.IsNaN(res.X[0]) {
		t.Fatalf("non-finite result accepted: X=%v rnorm=%v", res.X, res.RNorm)
	}
	if res.X[0] < wall {
		t.Errorf("X = %v landed inside the NaN region (< %v)", res.X[0], wall)
	}
	if res.X[0] > wall+0.05 {
		t.Errorf("X = %v, want pressed against the wall at %v", res.X[0], wall)
	}
	if math.Abs(res.RNorm-(res.X[0]-3)) > 1e-12 {
		t.Errorf("RNorm = %v inconsistent with X = %v", res.RNorm, res.X[0])
	}
}
