// Package nlopt implements the non-linear optimizer of the paper's
// runtime: non-linear least squares with simple variable bounds, the
// analog of IMSL's imsl_f_bounded_least_squares. The method is a modified
// Levenberg–Marquardt iteration with an active-set treatment of the
// bounds, exactly the algorithm family the IMSL routine documents: at
// each step, variables pinned at a bound with an inward-pointing gradient
// stay fixed; the damped normal equations are solved over the free
// variables; trial points are projected back into the box.
//
// The parameter estimator uses it to fit kinetic rate constants — the
// chemist supplies lower and upper bounds consistent with quantum
// chemistry, and the optimizer finds the constants that best reproduce
// the experimental property curves.
package nlopt

import (
	"errors"
	"fmt"
	"math"

	"rms/internal/budget"
	"rms/internal/linalg"
)

// Residual evaluates the residual vector r(x); len(r) is the number of
// observations m, fixed across calls.
type Residual func(x, r []float64) error

// Options tunes the optimizer; zero values select defaults.
type Options struct {
	// Tol is the convergence tolerance on the scaled step and the
	// projected gradient (default 1e-8).
	Tol float64
	// MaxIter bounds outer iterations (default 200).
	MaxIter int
	// InitialLambda seeds the damping parameter (default 1e-3).
	InitialLambda float64
	// RelStep scales the forward-difference Jacobian step (default
	// √machine-epsilon ≈ 1.5e-8). Raise it when the residual itself is
	// computed by an iterative solver whose truncation error would drown
	// a √ε perturbation — e.g. ODE solutions at loose tolerances.
	RelStep float64
	// RecordHistory fills Result.History with ‖r‖ after every outer
	// iteration — the convergence trace a chemist inspects when a fit
	// stalls.
	RecordHistory bool
	// KeepJacobian recomputes the residual Jacobian at the solution and
	// stores it (with the final residuals) in the Result, for the
	// statistical analysis step (package stats).
	KeepJacobian bool
	// Observer, when non-nil, receives one IterEvent after each outer
	// iteration — the damping, residual norm and trial accounting a live
	// fit monitor displays. The callback runs on the optimizer's
	// goroutine; keep it cheap.
	Observer func(IterEvent)
	// Budget, when non-nil, is checked at every outer-iteration boundary.
	// A tripped budget — or a Residual error caused by one (see
	// budget.Exhausted) — ends the fit cooperatively: the optimizer
	// returns BOTH a well-formed partial Result holding the best point
	// reached AND the budget's error, so callers can checkpoint the
	// partial fit before unwinding.
	Budget *budget.Budget
	// Checkpoint, when non-nil, is called at every outer-iteration
	// boundary with the exact state a Resume needs to reproduce the rest
	// of the fit bit-identically. It runs before the iteration's work (and
	// before the budget check), so the persisted state never lags a
	// cancellation. A Checkpoint error aborts the fit.
	Checkpoint func(CheckState) error
	// Resume, when non-nil, restarts the fit from a captured CheckState
	// instead of x0: the residuals are recomputed at the restored point
	// and iteration numbering continues from CheckState.Iter, so an
	// interrupted fit resumed from its last checkpoint finishes with
	// bit-identical parameters to the uninterrupted run.
	Resume *CheckState
}

// CheckState is the optimizer state at an outer-iteration boundary — the
// complete LM-side snapshot for checkpoint/resume. Residuals are excluded
// deliberately: r(x) is a pure function of x and is recomputed on resume,
// which keeps snapshots small and makes staleness impossible.
type CheckState struct {
	// Iter is the 0-based outer iteration about to run.
	Iter int `json:"iter"`
	// X is the current (best) point.
	X []float64 `json:"x"`
	// Lambda is the LM damping carried into iteration Iter.
	Lambda float64 `json:"lambda"`
	// RNorm is ‖r(X)‖₂, stored for diagnostics and sanity checks.
	RNorm float64 `json:"rnorm"`
}

// IterEvent is one outer Levenberg–Marquardt iteration's telemetry
// record.
type IterEvent struct {
	// Iter is the 1-based outer iteration number.
	Iter int
	// Lambda is the damping parameter after the iteration's trial loop.
	Lambda float64
	// RNorm is ‖r‖₂ after the iteration (unchanged when no trial was
	// accepted).
	RNorm float64
	// Improved reports whether some trial point was accepted.
	Improved bool
	// Trials counts the damped trial points evaluated; NonFiniteTrials
	// the subset whose residuals came back NaN/Inf (fault regions).
	Trials, NonFiniteTrials int
	// FreeVars is the number of variables off their bounds this
	// iteration.
	FreeVars int
}

// Result reports the optimization outcome.
type Result struct {
	// X is the best point found (always within bounds).
	X []float64
	// RNorm is ||r(X)||₂.
	RNorm float64
	// Iterations, FEvals and JEvals count the work done.
	Iterations, FEvals, JEvals int
	// Converged reports whether a convergence test fired (as opposed to
	// hitting MaxIter).
	Converged bool
	// Active[i] is true when variable i finished pinned at a bound.
	Active []bool
	// History holds ‖r‖ after each outer iteration (RecordHistory only).
	History []float64
	// Residuals holds r(X) and Jacobian ∂r/∂x at X (KeepJacobian only).
	Residuals []float64
	Jacobian  *linalg.Matrix
}

// ErrBadBounds reports inconsistent or malformed bounds.
var ErrBadBounds = errors.New("nlopt: inconsistent bounds")

// ErrNonFinite reports a residual or Jacobian containing NaN or Inf
// where the algorithm cannot route around it (the starting point or a
// derivative column). Non-finite *trial* residuals are handled
// internally: the trial is treated as worse than the current point, so
// the damping grows and a shorter step is tried — NaN never reaches the
// normal equations.
var ErrNonFinite = errors.New("nlopt: non-finite residual")

func allFinite(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// BoundedLeastSquares minimizes ½‖r(x)‖² subject to lower ≤ x ≤ upper.
// m is the residual dimension.
func BoundedLeastSquares(f Residual, x0, lower, upper []float64, m int, opts Options) (*Result, error) {
	n := len(x0)
	if len(lower) != n || len(upper) != n {
		return nil, fmt.Errorf("%w: n=%d, len(lower)=%d, len(upper)=%d",
			ErrBadBounds, n, len(lower), len(upper))
	}
	for i := range lower {
		if lower[i] > upper[i] {
			return nil, fmt.Errorf("%w: lower[%d]=%g > upper[%d]=%g",
				ErrBadBounds, i, lower[i], i, upper[i])
		}
	}
	if m <= 0 {
		return nil, fmt.Errorf("nlopt: non-positive residual dimension %d", m)
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-8
	}
	if opts.MaxIter == 0 {
		opts.MaxIter = 200
	}
	if opts.InitialLambda == 0 {
		opts.InitialLambda = 1e-3
	}
	if opts.RelStep == 0 {
		opts.RelStep = 1.4901161193847656e-08
	}

	res := &Result{X: make([]float64, n), Active: make([]bool, n)}
	x := make([]float64, n)
	startIter := 0
	if opts.Resume != nil {
		if len(opts.Resume.X) != n {
			return nil, fmt.Errorf("nlopt: resume state has %d variables, want %d", len(opts.Resume.X), n)
		}
		copy(x, opts.Resume.X)
		startIter = opts.Resume.Iter
	} else {
		copy(x, x0)
	}
	clamp(x, lower, upper)

	r := make([]float64, m)
	rTrial := make([]float64, m)
	xTrial := make([]float64, n)
	grad := make([]float64, n)
	jac := linalg.NewMatrix(m, n)

	rNorm := 0.0
	lambda := opts.InitialLambda
	if opts.Resume != nil {
		lambda = opts.Resume.Lambda
	}

	// partial packages the best point reached so far together with the
	// interrupting error — the cooperative-cancellation contract: a budget
	// trip never discards converged-so-far work.
	partial := func(err error) (*Result, error) {
		copy(res.X, x)
		res.RNorm = rNorm
		for j := range x {
			res.Active[j] = (x[j] <= lower[j] && lower[j] == upper[j]) ||
				x[j] == lower[j] || x[j] == upper[j]
		}
		return res, err
	}

	if err := f(x, r); err != nil {
		if budget.Exhausted(err) {
			return partial(err)
		}
		return nil, fmt.Errorf("nlopt: residual at start: %w", err)
	}
	res.FEvals++
	if !allFinite(r) {
		return nil, fmt.Errorf("%w at the starting point", ErrNonFinite)
	}
	rNorm = linalg.Norm2(r)

	emit := func(improved bool, trials, nonFinite, freeVars int) {
		if opts.Observer != nil {
			opts.Observer(IterEvent{
				Iter: res.Iterations, Lambda: lambda, RNorm: rNorm,
				Improved: improved, Trials: trials,
				NonFiniteTrials: nonFinite, FreeVars: freeVars,
			})
		}
	}

	for iter := startIter; iter < opts.MaxIter; iter++ {
		if opts.Checkpoint != nil {
			if err := opts.Checkpoint(CheckState{Iter: iter, X: append([]float64(nil), x...), Lambda: lambda, RNorm: rNorm}); err != nil {
				return partial(fmt.Errorf("nlopt: checkpoint at iteration %d: %w", iter, err))
			}
		}
		if err := opts.Budget.Check(); err != nil {
			return partial(err)
		}
		res.Iterations = iter + 1
		if opts.RecordHistory {
			res.History = append(res.History, rNorm)
		}
		if err := jacobian(f, x, r, lower, upper, jac, rTrial, xTrial, opts.RelStep); err != nil {
			if budget.Exhausted(err) {
				return partial(err)
			}
			return nil, fmt.Errorf("nlopt: jacobian at iteration %d: %w", iter, err)
		}
		res.JEvals++
		res.FEvals += n

		// grad = Jᵀ r
		for j := 0; j < n; j++ {
			s := 0.0
			for i := 0; i < m; i++ {
				s += jac.At(i, j) * r[i]
			}
			grad[j] = s
		}

		// Active set: pinned at a bound with the gradient pushing outward.
		free := free(x, grad, lower, upper, res.Active)
		if len(free) == 0 {
			res.Converged = true
			emit(false, 0, 0, 0)
			break
		}
		// Projected-gradient convergence test.
		pg := 0.0
		for _, j := range free {
			if g := math.Abs(grad[j]); g > pg {
				pg = g
			}
		}
		if pg <= opts.Tol*math.Max(1, rNorm) {
			res.Converged = true
			emit(false, 0, 0, len(free))
			break
		}

		improved := false
		sawNonFinite := false
		trials, nonFiniteTrials := 0, 0
		for inner := 0; inner < 30; inner++ {
			delta, err := solveDamped(jac, r, grad, free, lambda)
			if err != nil {
				lambda *= 10
				continue
			}
			copy(xTrial, x)
			for fi, j := range free {
				xTrial[j] += delta[fi]
			}
			clamp(xTrial, lower, upper)
			if err := f(xTrial, rTrial); err != nil {
				if budget.Exhausted(err) {
					return partial(err)
				}
				return nil, fmt.Errorf("nlopt: residual at trial point: %w", err)
			}
			res.FEvals++
			trials++
			if !allFinite(rTrial) {
				// The trial point broke the residual computation (for ODE
				// objectives: the solver blew up there). Treat it as worse
				// than the current point — grow the damping toward a
				// shorter step — and keep NaN away from the accept test.
				sawNonFinite = true
				nonFiniteTrials++
				lambda *= 4
				if lambda > 1e12 {
					break
				}
				continue
			}
			tNorm := linalg.Norm2(rTrial)
			if tNorm < rNorm {
				// Accept.
				stepNorm := 0.0
				for j := 0; j < n; j++ {
					stepNorm += (xTrial[j] - x[j]) * (xTrial[j] - x[j])
				}
				stepNorm = math.Sqrt(stepNorm)
				copy(x, xTrial)
				copy(r, rTrial)
				relDrop := (rNorm - tNorm) / math.Max(rNorm, 1e-300)
				rNorm = tNorm
				lambda = math.Max(lambda/3, 1e-12)
				improved = true
				if stepNorm <= opts.Tol*(1+linalg.Norm2(x)) || relDrop < opts.Tol {
					res.Converged = true
				}
				break
			}
			lambda *= 4
			if lambda > 1e12 {
				break
			}
		}
		emit(improved, trials, nonFiniteTrials, len(free))
		if !improved || res.Converged {
			// A stall in a damped local minimum is convergence — unless the
			// stall came from non-finite trial residuals, which is a fault
			// region, not an optimum.
			if !improved && !sawNonFinite {
				res.Converged = true
			}
			break
		}
	}
	copy(res.X, x)
	res.RNorm = rNorm
	if opts.KeepJacobian {
		res.Residuals = append([]float64(nil), r...)
		res.Jacobian = linalg.NewMatrix(m, n)
		if err := jacobian(f, x, r, lower, upper, res.Jacobian, rTrial, xTrial, opts.RelStep); err != nil {
			if budget.Exhausted(err) {
				res.Jacobian = nil
				res.Residuals = nil
				return partial(err)
			}
			return nil, fmt.Errorf("nlopt: jacobian at solution: %w", err)
		}
		res.FEvals += n
	}
	// Final active-set report.
	for j := range x {
		res.Active[j] = (x[j] <= lower[j] && lower[j] == upper[j]) ||
			x[j] == lower[j] || x[j] == upper[j]
	}
	return res, nil
}

// jacobian fills jac with forward differences, stepping inward at bounds.
func jacobian(f Residual, x, r, lower, upper []float64, jac *linalg.Matrix, work, xw []float64, relStep float64) error {
	m, n := jac.Rows, jac.Cols
	copy(xw, x)
	for j := 0; j < n; j++ {
		d := relStep * math.Max(math.Abs(x[j]), 1)
		if x[j]+d > upper[j] {
			d = -d // step inward at the upper bound
		}
		if d == 0 {
			d = relStep
		}
		xw[j] = x[j] + d
		if err := f(xw, work); err != nil {
			return err
		}
		if !allFinite(work) {
			// A NaN derivative column would poison Jᵀ J and every
			// subsequent step; fail loudly instead.
			return fmt.Errorf("%w in derivative column %d", ErrNonFinite, j)
		}
		inv := 1 / d
		for i := 0; i < m; i++ {
			jac.Set(i, j, (work[i]-r[i])*inv)
		}
		xw[j] = x[j]
	}
	return nil
}

// free returns the indices allowed to move and records the active set.
func free(x, grad, lower, upper []float64, active []bool) []int {
	var out []int
	for j := range x {
		atLower := x[j] <= lower[j]
		atUpper := x[j] >= upper[j]
		pinned := (atLower && grad[j] > 0) || (atUpper && grad[j] < 0) || lower[j] == upper[j]
		active[j] = pinned
		if !pinned {
			out = append(out, j)
		}
	}
	return out
}

// solveDamped solves (JᵀJ + λ·diag(JᵀJ))δ = -Jᵀr over the free variables.
func solveDamped(jac *linalg.Matrix, r, grad []float64, free []int, lambda float64) ([]float64, error) {
	nf := len(free)
	a := linalg.NewMatrix(nf, nf)
	b := make([]float64, nf)
	m := jac.Rows
	for fi, j := range free {
		for fk := fi; fk < nf; fk++ {
			k := free[fk]
			s := 0.0
			for i := 0; i < m; i++ {
				s += jac.At(i, j) * jac.At(i, k)
			}
			a.Set(fi, fk, s)
			a.Set(fk, fi, s)
		}
		b[fi] = -grad[j]
	}
	diag := make([]float64, nf)
	for fi := 0; fi < nf; fi++ {
		d := a.At(fi, fi)
		if d == 0 {
			d = 1e-12
		}
		diag[fi] = d
		a.Set(fi, fi, d*(1+lambda))
	}
	if ch, err := a.Cholesky(); err == nil {
		return ch.Solve(b)
	}
	// The normal equations lost positive definiteness to rounding (a
	// nearly rank-deficient Jacobian). Solve the equivalent augmented
	// least-squares problem min ||[J; sqrt(lambda*diag)]*delta + [r; 0]||
	// by QR, which squares no condition numbers.
	return solveDampedQR(jac, r, free, diag, lambda)
}

// solveDampedQR is the QR path for ill-conditioned damped steps.
func solveDampedQR(jac *linalg.Matrix, r []float64, free []int, diag []float64, lambda float64) ([]float64, error) {
	m := jac.Rows
	nf := len(free)
	aug := linalg.NewMatrix(m+nf, nf)
	rhs := make([]float64, m+nf)
	for i := 0; i < m; i++ {
		for fi, j := range free {
			aug.Set(i, fi, jac.At(i, j))
		}
		rhs[i] = -r[i]
	}
	for fi := range free {
		aug.Set(m+fi, fi, math.Sqrt(lambda*diag[fi]))
	}
	qr, err := aug.QR()
	if err != nil {
		return nil, err
	}
	return qr.Solve(rhs)
}

func clamp(x, lower, upper []float64) {
	for i := range x {
		if x[i] < lower[i] {
			x[i] = lower[i]
		}
		if x[i] > upper[i] {
			x[i] = upper[i]
		}
	}
}
