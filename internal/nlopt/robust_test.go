package nlopt

import (
	"math"
	"testing"

	"rms/internal/budget"
)

// rosenResidual is a bounded Rosenbrock-style least-squares problem with
// enough iterations to interrupt in the middle.
func rosenResidual(x, r []float64) error {
	r[0] = 10 * (x[1] - x[0]*x[0])
	r[1] = 1 - x[0]
	r[2] = 0.5 * (x[1] - 1)
	return nil
}

func rosenSetup() (x0, lo, hi []float64) {
	return []float64{-1.2, 1}, []float64{-4, -4}, []float64{4, 4}
}

func TestCheckpointResumeBitIdentical(t *testing.T) {
	x0, lo, hi := rosenSetup()

	// Uninterrupted reference run, recording every iteration boundary.
	var states []CheckState
	ref, err := BoundedLeastSquares(rosenResidual, x0, lo, hi, 3, Options{
		Checkpoint: func(cs CheckState) error {
			states = append(states, cs)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(states) < 4 {
		t.Fatalf("only %d iteration boundaries; need an interruptible run", len(states))
	}

	// Resume from every captured boundary: each must land on bit-identical
	// parameters.
	for _, cs := range states {
		res, err := BoundedLeastSquares(rosenResidual, x0, lo, hi, 3, Options{Resume: &cs})
		if err != nil {
			t.Fatalf("resume at iter %d: %v", cs.Iter, err)
		}
		for j := range ref.X {
			if res.X[j] != ref.X[j] {
				t.Fatalf("resume at iter %d: X[%d] = %v, want %v (bit-identical)",
					cs.Iter, j, res.X[j], ref.X[j])
			}
		}
		if res.RNorm != ref.RNorm {
			t.Fatalf("resume at iter %d: RNorm %v vs %v", cs.Iter, res.RNorm, ref.RNorm)
		}
		if res.Converged != ref.Converged {
			t.Fatalf("resume at iter %d: Converged %v vs %v", cs.Iter, res.Converged, ref.Converged)
		}
	}
}

func TestBudgetCancelReturnsPartialResult(t *testing.T) {
	x0, lo, hi := rosenSetup()
	bud := budget.New()
	iters := 0
	res, err := BoundedLeastSquares(rosenResidual, x0, lo, hi, 3, Options{
		Budget: bud,
		Checkpoint: func(CheckState) error {
			iters++
			if iters == 3 {
				bud.Cancel("test")
			}
			return nil
		},
	})
	if !budget.Exhausted(err) {
		t.Fatalf("want budget trip, got %v", err)
	}
	if res == nil {
		t.Fatal("cancellation must return a partial result")
	}
	if len(res.X) != 2 || math.IsNaN(res.X[0]) || math.IsNaN(res.RNorm) {
		t.Fatalf("partial result malformed: %+v", res)
	}
	if res.Iterations != 2 {
		t.Fatalf("partial result ran %d iterations, want 2 before the trip", res.Iterations)
	}
}

func TestBudgetTripInsideResidualReturnsPartial(t *testing.T) {
	x0, lo, hi := rosenSetup()
	bud := budget.New()
	calls := 0
	f := func(x, r []float64) error {
		calls++
		if calls == 8 {
			bud.Cancel("mid-jacobian")
		}
		if err := bud.Check(); err != nil {
			return err
		}
		return rosenResidual(x, r)
	}
	res, err := BoundedLeastSquares(f, x0, lo, hi, 3, Options{Budget: bud})
	if !budget.Exhausted(err) {
		t.Fatalf("want budget trip, got %v", err)
	}
	if res == nil || len(res.X) != 2 {
		t.Fatal("partial result missing")
	}
}

func TestResumeRejectsWrongDimension(t *testing.T) {
	x0, lo, hi := rosenSetup()
	bad := &CheckState{Iter: 1, X: []float64{1, 2, 3}, Lambda: 1e-3}
	if _, err := BoundedLeastSquares(rosenResidual, x0, lo, hi, 3, Options{Resume: bad}); err == nil {
		t.Fatal("mismatched resume state accepted")
	}
}
