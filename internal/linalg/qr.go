package linalg

import (
	"fmt"
	"math"
)

// QR is a Householder QR factorization of an m×n matrix with m ≥ n:
// A = Q·R with Q orthonormal (stored as Householder reflectors) and R
// upper triangular. Its least-squares solve is the numerically robust
// alternative to the damped normal equations when JᵀJ is ill-conditioned.
type QR struct {
	qr    *Matrix   // reflectors below the diagonal, R on and above
	rdiag []float64 // diagonal of R
}

// QR factors the matrix; it does not modify m.
func (m *Matrix) QR() (*QR, error) {
	if m.Rows < m.Cols {
		return nil, fmt.Errorf("linalg: QR needs rows >= cols, got %d×%d", m.Rows, m.Cols)
	}
	f := &QR{qr: m.Clone(), rdiag: make([]float64, m.Cols)}
	a := f.qr
	rows, cols := a.Rows, a.Cols
	for k := 0; k < cols; k++ {
		// Householder vector for column k.
		norm := 0.0
		for i := k; i < rows; i++ {
			norm = math.Hypot(norm, a.At(i, k))
		}
		if norm == 0 {
			return nil, fmt.Errorf("%w (column %d)", ErrSingular, k)
		}
		if a.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < rows; i++ {
			a.Set(i, k, a.At(i, k)/norm)
		}
		a.Add(k, k, 1)
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < cols; j++ {
			s := 0.0
			for i := k; i < rows; i++ {
				s += a.At(i, k) * a.At(i, j)
			}
			s = -s / a.At(k, k)
			for i := k; i < rows; i++ {
				a.Add(i, j, s*a.At(i, k))
			}
		}
		f.rdiag[k] = -norm
	}
	return f, nil
}

// Solve returns the least-squares solution x minimizing ‖A·x − b‖₂.
func (f *QR) Solve(b []float64) ([]float64, error) {
	a := f.qr
	rows, cols := a.Rows, a.Cols
	if len(b) != rows {
		return nil, fmt.Errorf("linalg: QR Solve rhs length %d, want %d", len(b), rows)
	}
	y := make([]float64, rows)
	copy(y, b)
	// Apply Qᵀ.
	for k := 0; k < cols; k++ {
		s := 0.0
		for i := k; i < rows; i++ {
			s += a.At(i, k) * y[i]
		}
		s = -s / a.At(k, k)
		for i := k; i < rows; i++ {
			y[i] += s * a.At(i, k)
		}
	}
	// Back substitution with R.
	x := make([]float64, cols)
	for i := cols - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < cols; j++ {
			s -= a.At(i, j) * x[j]
		}
		d := f.rdiag[i]
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}
