package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// randSparseSystem builds a random diagonally dominant sparse matrix as
// both coordinate lists and a filled CSR.
func randSparseSystem(rng *rand.Rand, n, extraPerRow int) (*CSR, *Matrix) {
	var rows, cols []int32
	dense := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		rows = append(rows, int32(i))
		cols = append(cols, int32(i))
		for e := 0; e < extraPerRow; e++ {
			j := rng.Intn(n)
			rows = append(rows, int32(i))
			cols = append(cols, int32(j))
		}
	}
	m := NewCSRPattern(n, rows, cols, true)
	for i := 0; i < n; i++ {
		sum := 0.0
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if int(m.ColIdx[p]) == i {
				continue
			}
			v := rng.NormFloat64()
			m.Data[p] = v
			sum += math.Abs(v)
		}
		// Diagonal dominance keeps the pivot-free factorization stable.
		d := sum + 1 + rng.Float64()
		m.Data[m.Index(i, i)] = d
	}
	for i := 0; i < n; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			dense.Set(i, int(m.ColIdx[p]), m.Data[p])
		}
	}
	return m, dense
}

func TestCSRPatternDedupAndIndex(t *testing.T) {
	rows := []int32{0, 0, 1, 2, 0}
	cols := []int32{2, 2, 0, 1, 1}
	m := NewCSRPattern(3, rows, cols, true)
	if m.NNZ() != 7 { // (0,1),(0,2),(0,0) + (1,0),(1,1) + (2,1),(2,2)
		t.Fatalf("NNZ = %d, want 7", m.NNZ())
	}
	if m.Index(0, 2) < 0 || m.Index(1, 1) < 0 {
		t.Fatal("expected structural entries missing")
	}
	if m.Index(2, 0) != -1 {
		t.Fatal("(2,0) should be structurally zero")
	}
	for i := 0; i < 3; i++ {
		for p := m.RowPtr[i] + 1; p < m.RowPtr[i+1]; p++ {
			if m.ColIdx[p-1] >= m.ColIdx[p] {
				t.Fatalf("row %d columns not strictly sorted", i)
			}
		}
	}
}

func TestCSRMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, dense := randSparseSystem(rng, 40, 4)
	x := make([]float64, m.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := make([]float64, m.N)
	want := make([]float64, m.N)
	m.MulVec(x, got)
	dense.MulVec(x, want)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("MulVec[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestSparseLUMatchesDenseSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(60)
		m, dense := randSparseSystem(rng, n, 1+rng.Intn(4))
		f, err := NewSparseLU(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Refactor(m); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		if err := f.SolveTo(x, b); err != nil {
			t.Fatal(err)
		}
		dlu, err := dense.LU()
		if err != nil {
			t.Fatal(err)
		}
		want, err := dlu.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, x[i], want[i])
			}
		}
		// Residual check: A·x ≈ b.
		r := make([]float64, n)
		m.MulVec(x, r)
		for i := range r {
			if math.Abs(r[i]-b[i]) > 1e-8 {
				t.Fatalf("trial %d: residual[%d] = %g", trial, i, r[i]-b[i])
			}
		}
	}
}

func TestSparseLURefactorReusesPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, _ := randSparseSystem(rng, 30, 3)
	f, err := NewSparseLU(m)
	if err != nil {
		t.Fatal(err)
	}
	if f.FillNNZ() < m.NNZ() {
		t.Fatalf("fill %d < pattern %d", f.FillNNZ(), m.NNZ())
	}
	if f.RefactorFlops() <= 0 || f.SolveFlops() <= 0 {
		t.Fatal("flop counts must be positive")
	}
	b := make([]float64, m.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, m.N)
	r := make([]float64, m.N)
	// Re-fill the same pattern with new values twice; each refactor must
	// produce a factorization solving the *current* values.
	for round := 0; round < 3; round++ {
		for i := 0; i < m.N; i++ {
			sum := 0.0
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				if int(m.ColIdx[p]) != i {
					m.Data[p] = rng.NormFloat64()
					sum += math.Abs(m.Data[p])
				}
			}
			m.Data[m.Index(i, i)] = sum + 1
		}
		if err := f.Refactor(m); err != nil {
			t.Fatal(err)
		}
		if err := f.SolveTo(x, b); err != nil {
			t.Fatal(err)
		}
		m.MulVec(x, r)
		for i := range r {
			if math.Abs(r[i]-b[i]) > 1e-8 {
				t.Fatalf("round %d: residual[%d] = %g", round, i, r[i]-b[i])
			}
		}
	}
}

func TestSparseLUSingular(t *testing.T) {
	rows := []int32{0, 1}
	cols := []int32{1, 0}
	m := NewCSRPattern(2, rows, cols, true)
	// Zero diagonal with no pivoting: row 0 pivot is 0.
	m.Data[m.Index(0, 1)] = 1
	m.Data[m.Index(1, 0)] = 1
	f, err := NewSparseLU(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Refactor(m); err == nil {
		t.Fatal("expected ErrSingular for zero pivot")
	}
}

func TestLUSolveToMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 25
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			sum += math.Abs(v)
		}
		m.Set(i, i, sum+1)
	}
	f, err := m.LU()
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, n)
	if err := f.SolveTo(dst, b); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("SolveTo[%d] = %g, Solve = %g", i, dst[i], want[i])
		}
	}
}

// TestSparseLUForkSharesSymbolic: forks share the one-time symbolic
// structure but keep independent numeric factors — each fork refactors
// and solves its own matrix, bit-identically to a from-scratch
// factorization over the same pattern.
func TestSparseLUForkSharesSymbolic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n, forks = 40, 3
	base, _ := randSparseSystem(rng, n, 3)
	root, err := NewSparseLU(base)
	if err != nil {
		t.Fatal(err)
	}
	mats := make([]*CSR, forks)
	lus := make([]*SparseLU, forks)
	for f := 0; f < forks; f++ {
		m, _ := randSparseSystem(rng, n, 3)
		// Same pattern as base (regenerate values onto base's layout).
		c := base.Clone()
		for i := range c.Data {
			c.Data[i] = 0
		}
		for i := 0; i < n; i++ {
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				if q := c.Index(i, int(m.ColIdx[p])); q >= 0 {
					c.Data[q] = m.Data[p]
				}
			}
		}
		for i := 0; i < n; i++ {
			c.Data[c.Index(i, i)] = m.Data[m.Index(i, i)]
		}
		mats[f] = c
		lus[f] = root.Fork()
		if lus[f].FillNNZ() != root.FillNNZ() || lus[f].RefactorFlops() != root.RefactorFlops() {
			t.Fatal("fork does not share the symbolic structure")
		}
	}
	// Interleave refactors and solves across forks: no cross-talk.
	for f := 0; f < forks; f++ {
		if err := lus[f].Refactor(mats[f]); err != nil {
			t.Fatalf("fork %d: %v", f, err)
		}
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	got := make([]float64, n)
	want := make([]float64, n)
	for f := 0; f < forks; f++ {
		fresh, err := NewSparseLU(base)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Refactor(mats[f]); err != nil {
			t.Fatal(err)
		}
		if err := fresh.SolveTo(want, b); err != nil {
			t.Fatal(err)
		}
		if err := lus[f].SolveTo(got, b); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("fork %d solution differs at %d: %v != %v", f, i, got[i], want[i])
			}
		}
	}
}
