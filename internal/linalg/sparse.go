// Sparse linear algebra for the stiff solver's Newton systems. Mass-action
// Jacobians are structurally sparse — an equation depends only on the
// species of its own reactions — so on large networks the n×n dense LU
// (O(n²) memory, O(n³) factorization) dominates long before the compiled
// right-hand side does. CSR storage plus an LU with a one-time symbolic
// factorization (the fill-in pattern is computed once; every numeric
// refactorization reuses it) changes the asymptotic cost of every stiff
// solve: memory and work scale with the nonzero count, not with n².
package linalg

import (
	"fmt"
	"math"
	"sort"
)

// CSR is a compressed-sparse-row matrix with a fixed structural pattern.
// The pattern (RowPtr, ColIdx) is built once; re-evaluations overwrite
// Data in place. Column indices are sorted within each row.
type CSR struct {
	N      int
	RowPtr []int32 // len N+1; row i occupies [RowPtr[i], RowPtr[i+1])
	ColIdx []int32 // len NNZ, sorted within each row
	Data   []float64
}

// NewCSRPattern builds a zero-valued CSR matrix with the structural
// pattern given by the (row, col) coordinate lists. Duplicates merge;
// when withDiagonal is set every diagonal position is included even if
// absent from the lists (the form the solver's iteration matrix
// I − hβ·J needs).
func NewCSRPattern(n int, rows, cols []int32, withDiagonal bool) *CSR {
	if len(rows) != len(cols) {
		panic(fmt.Sprintf("linalg: pattern length mismatch %d vs %d", len(rows), len(cols)))
	}
	perRow := make([][]int32, n)
	for i, r := range rows {
		if r < 0 || int(r) >= n || cols[i] < 0 || int(cols[i]) >= n {
			panic(fmt.Sprintf("linalg: pattern entry (%d,%d) outside %d×%d", r, cols[i], n, n))
		}
		perRow[r] = append(perRow[r], cols[i])
	}
	if withDiagonal {
		for i := 0; i < n; i++ {
			perRow[i] = append(perRow[i], int32(i))
		}
	}
	m := &CSR{N: n, RowPtr: make([]int32, n+1)}
	for i := 0; i < n; i++ {
		cs := perRow[i]
		sort.Slice(cs, func(a, b int) bool { return cs[a] < cs[b] })
		last := int32(-1)
		for _, c := range cs {
			if c != last {
				m.ColIdx = append(m.ColIdx, c)
				last = c
			}
		}
		m.RowPtr[i+1] = int32(len(m.ColIdx))
	}
	m.Data = make([]float64, len(m.ColIdx))
	return m
}

// NNZ returns the structural nonzero count.
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// Density returns NNZ / n².
func (m *CSR) Density() float64 {
	if m.N == 0 {
		return 0
	}
	return float64(m.NNZ()) / (float64(m.N) * float64(m.N))
}

// Clone returns a deep copy sharing no storage.
func (m *CSR) Clone() *CSR {
	return &CSR{
		N:      m.N,
		RowPtr: append([]int32(nil), m.RowPtr...),
		ColIdx: append([]int32(nil), m.ColIdx...),
		Data:   append([]float64(nil), m.Data...),
	}
}

// Index returns the Data offset of entry (i, j), or -1 when (i, j) is
// structurally zero.
func (m *CSR) Index(i, j int) int {
	lo, hi := int(m.RowPtr[i]), int(m.RowPtr[i+1])
	for lo < hi {
		mid := (lo + hi) / 2
		if c := int(m.ColIdx[mid]); c < j {
			lo = mid + 1
		} else if c > j {
			hi = mid
		} else {
			return mid
		}
	}
	return -1
}

// At returns m[i,j] (0 for structural zeros).
func (m *CSR) At(i, j int) float64 {
	if p := m.Index(i, j); p >= 0 {
		return m.Data[p]
	}
	return 0
}

// Zero clears all stored values, keeping the pattern.
func (m *CSR) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MulVec computes dst = m·x. dst may not alias x.
func (m *CSR) MulVec(x, dst []float64) {
	if len(x) != m.N || len(dst) != m.N {
		panic("linalg: CSR MulVec shape mismatch")
	}
	for i := 0; i < m.N; i++ {
		s := 0.0
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			s += m.Data[p] * x[m.ColIdx[p]]
		}
		dst[i] = s
	}
}

// Dense expands the matrix to dense form (testing helper).
func (m *CSR) Dense() *Matrix {
	d := NewMatrix(m.N, m.N)
	for i := 0; i < m.N; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			d.Set(i, int(m.ColIdx[p]), m.Data[p])
		}
	}
	return d
}

// SparseLU is a sparse LU factorization without pivoting, specialized for
// the solver's diagonally dominant iteration matrices M = I − hβ·J. The
// symbolic phase (NewSparseLU) computes a fill-reducing minimum-degree
// ordering and the fill-in pattern of L+U once; Refactor reuses both for
// every numeric refactorization, and SolveTo runs the sparse triangular
// solves in place. A (near-)zero pivot makes Refactor return ErrSingular
// — the caller falls back exactly as it does for a singular dense
// factorization.
type SparseLU struct {
	n int
	// Fill-reducing symmetric permutation: the factorization is of PAPᵀ,
	// where new index i holds original variable perm[i].
	perm, iperm []int32
	// Merged L+U pattern of the permuted matrix, row-wise, column-sorted.
	// L is strictly below the diagonal with unit diagonal implied; U is
	// the diagonal and above.
	rowPtr []int32
	colIdx []int32
	diag   []int32 // diag[i] = offset of entry (i,i)
	data   []float64

	// workspaces: scatter row for Refactor, permuted rhs for SolveTo
	work []float64
	rhs  []float64

	refactorFlops int64 // multiply-add count of one numeric refactorization
}

// minDegreeOrder returns a greedy minimum-degree elimination order of the
// symmetrized pattern — the classic fill-reducing heuristic. Mass-action
// networks mix near-banded variant families with a few reservoir "hub"
// species coupled to everything; natural order eliminates the hubs first
// and fills the factor completely, while minimum degree pushes them last
// and keeps fill within a small multiple of the original nonzeros. Ties
// break toward the lower index, so the order is deterministic.
func minDegreeOrder(a *CSR) []int32 {
	n := a.N
	adj := make([]map[int32]struct{}, n)
	for i := range adj {
		adj[i] = make(map[int32]struct{})
	}
	for i := 0; i < n; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if j := a.ColIdx[p]; int(j) != i {
				adj[i][j] = struct{}{}
				adj[j][int32(i)] = struct{}{}
			}
		}
	}
	perm := make([]int32, 0, n)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	nbrs := make([]int32, 0, n)
	for len(perm) < n {
		best, bd := -1, n+1
		for i := 0; i < n; i++ {
			if alive[i] && len(adj[i]) < bd {
				best, bd = i, len(adj[i])
			}
		}
		v := int32(best)
		perm = append(perm, v)
		alive[v] = false
		nbrs = nbrs[:0]
		for u := range adj[v] {
			nbrs = append(nbrs, u)
			delete(adj[u], v)
		}
		// Eliminating v connects its surviving neighbours into a clique.
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				x, y := nbrs[i], nbrs[j]
				adj[x][y] = struct{}{}
				adj[y][x] = struct{}{}
			}
		}
		adj[v] = nil
	}
	return perm
}

// NewSparseLU chooses a fill-reducing minimum-degree ordering and
// performs the symbolic factorization of the given structural pattern
// (which must include every diagonal position; NewCSRPattern with
// withDiagonal guarantees that). Only the pattern is read, never Data.
func NewSparseLU(pattern *CSR) (*SparseLU, error) {
	n := pattern.N
	perm := minDegreeOrder(pattern)
	iperm := make([]int32, n)
	for i, v := range perm {
		iperm[v] = int32(i)
	}
	// Permute the pattern symmetrically: new entry (iperm[r], iperm[c]).
	prows := make([]int32, 0, pattern.NNZ())
	pcols := make([]int32, 0, pattern.NNZ())
	for i := 0; i < n; i++ {
		for p := pattern.RowPtr[i]; p < pattern.RowPtr[i+1]; p++ {
			prows = append(prows, iperm[i])
			pcols = append(pcols, iperm[pattern.ColIdx[p]])
		}
	}
	a := NewCSRPattern(n, prows, pcols, false)
	f := &SparseLU{
		n:      n,
		perm:   perm,
		iperm:  iperm,
		rowPtr: make([]int32, n+1),
		diag:   make([]int32, n),
		work:   make([]float64, n),
		rhs:    make([]float64, n),
	}
	// Row-wise symbolic elimination: the pattern of row i of L\U is the
	// closure of A's row i under "a nonzero in column k < i pulls in row
	// k's U pattern (columns > k)". Columns below the diagonal are
	// processed in increasing order via a small binary heap.
	uRows := make([][]int32, n) // U part (cols > k) of each finished row
	in := make([]bool, n)
	var cols []int32
	var heap intHeap
	for i := 0; i < n; i++ {
		cols = cols[:0]
		heap = heap[:0]
		sawDiag := false
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			c := a.ColIdx[p]
			if !in[c] {
				in[c] = true
				cols = append(cols, c)
				if int(c) < i {
					heap.push(c)
				}
				if int(c) == i {
					sawDiag = true
				}
			}
		}
		if !sawDiag {
			for _, c := range cols {
				in[c] = false
			}
			return nil, fmt.Errorf("linalg: sparse pattern misses diagonal %d", i)
		}
		for len(heap) > 0 {
			k := heap.pop()
			for _, c := range uRows[k] {
				if !in[c] {
					in[c] = true
					cols = append(cols, c)
					if int(c) < i {
						heap.push(c)
					}
				}
			}
		}
		sort.Slice(cols, func(a, b int) bool { return cols[a] < cols[b] })
		for _, c := range cols {
			in[c] = false
			if int(c) == i {
				f.diag[i] = int32(len(f.colIdx))
			}
			f.colIdx = append(f.colIdx, c)
		}
		f.rowPtr[i+1] = int32(len(f.colIdx))
		// U part of this row, for later rows' merges.
		uRows[i] = f.colIdx[f.diag[i]+1 : f.rowPtr[i+1]]
	}
	f.data = make([]float64, len(f.colIdx))
	// The numeric refactorization's flop count is fixed by the pattern:
	// every L entry (i,k) triggers one division plus one multiply-add per
	// entry of U's row k.
	for i := 0; i < n; i++ {
		for p := f.rowPtr[i]; p < f.diag[i]; p++ {
			k := f.colIdx[p]
			f.refactorFlops += 1 + int64(f.rowPtr[k+1]-f.diag[k]-1)
		}
	}
	return f, nil
}

// intHeap is a minimal binary min-heap over column indices.
type intHeap []int32

func (h *intHeap) push(v int32) {
	*h = append(*h, v)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p] <= (*h)[i] {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *intHeap) pop() int32 {
	v := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	*h = (*h)[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(*h) && (*h)[l] < (*h)[small] {
			small = l
		}
		if r < len(*h) && (*h)[r] < (*h)[small] {
			small = r
		}
		if small == i {
			return v
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
}

// Fork returns a factorization sharing f's symbolic structure (ordering,
// fill pattern, flop counts — the expensive one-time phase) with private
// numeric storage and workspaces. The batched stiff solver forks one
// symbolic factorization per lane: every lane's iteration matrix has the
// same sparsity pattern, so the min-degree ordering and fill-in analysis
// are computed once and only the per-lane numeric Refactor/SolveTo state
// is duplicated. The shared slices are never written after NewSparseLU,
// so forks are safe to use from different goroutines (each fork from one
// goroutine at a time, as with any SparseLU).
func (f *SparseLU) Fork() *SparseLU {
	g := *f
	g.data = make([]float64, len(f.data))
	g.work = make([]float64, f.n)
	g.rhs = make([]float64, f.n)
	return &g
}

// N returns the factorization's dimension.
func (f *SparseLU) N() int { return f.n }

// FillNNZ returns the nonzero count of L+U including fill-in.
func (f *SparseLU) FillNNZ() int { return len(f.colIdx) }

// RefactorFlops returns the multiply-add count of one numeric
// refactorization — fixed by the symbolic pattern, the sparse analogue of
// the dense ⅔n³.
func (f *SparseLU) RefactorFlops() int64 { return f.refactorFlops }

// SolveFlops returns the multiply-add count of one triangular solve pair
// (the sparse analogue of the dense 2n²).
func (f *SparseLU) SolveFlops() int64 { return 2 * int64(len(f.colIdx)) }

// Refactor computes the numeric factorization of a, which must have a
// pattern contained in the symbolic pattern NewSparseLU was built from
// (structurally missing entries are treated as zero).
func (f *SparseLU) Refactor(a *CSR) error {
	if a.N != f.n {
		return fmt.Errorf("linalg: Refactor of %d×%d matrix into %d×%d factorization", a.N, a.N, f.n, f.n)
	}
	w := f.work
	for i := 0; i < f.n; i++ {
		// Scatter row perm[i] of A onto the fill pattern, mapping columns
		// through the fill-reducing permutation.
		for p := f.rowPtr[i]; p < f.rowPtr[i+1]; p++ {
			w[f.colIdx[p]] = 0
		}
		v := f.perm[i]
		for p := a.RowPtr[v]; p < a.RowPtr[v+1]; p++ {
			w[f.iperm[a.ColIdx[p]]] = a.Data[p]
		}
		// Eliminate with previous rows, in column order.
		for p := f.rowPtr[i]; p < f.diag[i]; p++ {
			k := f.colIdx[p]
			l := w[k] / f.data[f.diag[k]]
			w[k] = l
			if l == 0 {
				continue
			}
			for q := f.diag[k] + 1; q < f.rowPtr[k+1]; q++ {
				w[f.colIdx[q]] -= l * f.data[q]
			}
		}
		piv := w[i]
		if piv == 0 || math.IsNaN(piv) {
			return fmt.Errorf("%w (sparse pivot row %d)", ErrSingular, v)
		}
		// Gather back into the factor storage.
		for p := f.rowPtr[i]; p < f.rowPtr[i+1]; p++ {
			f.data[p] = w[f.colIdx[p]]
		}
	}
	return nil
}

// SolveTo solves A·x = b into dst without allocating. dst and b must have
// length n; dst may alias b.
func (f *SparseLU) SolveTo(dst, b []float64) error {
	if len(b) != f.n || len(dst) != f.n {
		return fmt.Errorf("linalg: SolveTo length %d/%d, want %d", len(dst), len(b), f.n)
	}
	// The factorization is of PAPᵀ, so solve (PAPᵀ)(P·x) = P·b in the
	// internal buffer and permute the result back out.
	r := f.rhs
	for i := 0; i < f.n; i++ {
		r[i] = b[f.perm[i]]
	}
	// Forward substitution: L has unit diagonal.
	for i := 0; i < f.n; i++ {
		s := r[i]
		for p := f.rowPtr[i]; p < f.diag[i]; p++ {
			s -= f.data[p] * r[f.colIdx[p]]
		}
		r[i] = s
	}
	// Back substitution with U.
	for i := f.n - 1; i >= 0; i-- {
		s := r[i]
		for p := f.diag[i] + 1; p < f.rowPtr[i+1]; p++ {
			s -= f.data[p] * r[f.colIdx[p]]
		}
		d := f.data[f.diag[i]]
		if d == 0 {
			return ErrSingular
		}
		r[i] = s / d
	}
	for i := 0; i < f.n; i++ {
		dst[f.perm[i]] = r[i]
	}
	return nil
}
