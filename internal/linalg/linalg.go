// Package linalg provides the small dense linear-algebra kernel the
// suite's numerics need: row-major matrices, LU decomposition with partial
// pivoting (for the BDF solver's Newton systems), Cholesky decomposition
// (for Levenberg–Marquardt's damped normal equations) and vector helpers.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization meets a (numerically)
// singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular")

// ErrNotSPD is returned by Cholesky on a matrix that is not symmetric
// positive definite.
var ErrNotSPD = errors.New("linalg: matrix is not positive definite")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %d×%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add assigns m[i,j] += v.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes dst = m·x. dst must have length Rows and x length Cols;
// dst may not alias x.
func (m *Matrix) MulVec(x, dst []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("linalg: MulVec shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// Identity returns the n×n identity.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// LU is an LU factorization with partial pivoting: P·A = L·U.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int
}

// LU factors the square matrix; it does not modify m.
func (m *Matrix) LU() (*LU, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("linalg: LU of non-square %d×%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	f := &LU{lu: m.Clone(), piv: make([]int, n), sign: 1}
	a := f.lu
	for i := range f.piv {
		f.piv[i] = i
	}
	for col := 0; col < n; col++ {
		// Pivot: largest magnitude in the column at or below the diagonal.
		p := col
		max := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > max {
				max, p = v, r
			}
		}
		if max == 0 || math.IsNaN(max) {
			return nil, fmt.Errorf("%w (pivot column %d)", ErrSingular, col)
		}
		if p != col {
			ri := a.Data[p*n : (p+1)*n]
			rj := a.Data[col*n : (col+1)*n]
			for k := range ri {
				ri[k], rj[k] = rj[k], ri[k]
			}
			f.piv[p], f.piv[col] = f.piv[col], f.piv[p]
			f.sign = -f.sign
		}
		d := a.At(col, col)
		for r := col + 1; r < n; r++ {
			l := a.At(r, col) / d
			a.Set(r, col, l)
			if l == 0 {
				continue
			}
			arow := a.Data[r*n : (r+1)*n]
			crow := a.Data[col*n : (col+1)*n]
			for k := col + 1; k < n; k++ {
				arow[k] -= l * crow[k]
			}
		}
	}
	return f, nil
}

// Solve returns x with A·x = b.
func (f *LU) Solve(b []float64) ([]float64, error) {
	x := make([]float64, f.lu.Rows)
	if err := f.SolveTo(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveTo solves A·x = b into dst without allocating — the form the BDF
// Newton loop calls once per corrector iteration. dst must have length n
// and may not alias b (the pivot permutation reads b out of order).
func (f *LU) SolveTo(dst, b []float64) error {
	n := f.lu.Rows
	if len(b) != n || len(dst) != n {
		return fmt.Errorf("linalg: SolveTo length %d/%d, want %d", len(dst), len(b), n)
	}
	x := dst
	for i, p := range f.piv {
		x[i] = b[p]
	}
	a := f.lu
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		row := a.Data[i*n : i*n+i]
		s := x[i]
		for j, v := range row {
			s -= v * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := a.Data[i*n+i+1 : (i+1)*n]
		s := x[i]
		for j, v := range row {
			s -= v * x[i+1+j]
		}
		d := a.At(i, i)
		if d == 0 {
			return ErrSingular
		}
		x[i] = s / d
	}
	return nil
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Cholesky is the lower-triangular factor of a symmetric positive
// definite matrix: A = L·Lᵀ.
type Cholesky struct {
	l *Matrix
}

// Cholesky factors the matrix; only the lower triangle of m is read.
func (m *Matrix) Cholesky() (*Cholesky, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("linalg: Cholesky of non-square %d×%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := m.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 || math.IsNaN(s) {
					return nil, fmt.Errorf("%w (diagonal %d: %g)", ErrNotSPD, i, s)
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return &Cholesky{l: l}, nil
}

// Solve returns x with A·x = b for the factored A.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	n := c.l.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: Solve rhs length %d, want %d", len(b), n)
	}
	x := make([]float64, n)
	// L·y = b
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= c.l.At(i, j) * x[j]
		}
		x[i] = s / c.l.At(i, i)
	}
	// Lᵀ·x = y
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= c.l.At(j, i) * x[j]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x, nil
}

// Dot returns ⟨a, b⟩.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm.
func Norm2(a []float64) float64 { return math.Sqrt(Dot(a, a)) }

// NormInf returns the max-magnitude norm.
func NormInf(a []float64) float64 {
	m := 0.0
	for _, v := range a {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}

// Axpy computes y += alpha·x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: Axpy length mismatch")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}
