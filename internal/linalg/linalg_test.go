package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolveKnown(t *testing.T) {
	a := NewMatrix(3, 3)
	vals := [][]float64{{2, 1, 1}, {4, -6, 0}, {-2, 7, 2}}
	for i := range vals {
		for j, v := range vals[i] {
			a.Set(i, j, v)
		}
	}
	f, err := a.LU()
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.Solve([]float64{5, -2, 9})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 2}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	if d := f.Det(); math.Abs(d-(-16)) > 1e-9 {
		t.Errorf("det = %v, want -16", d)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := a.LU(); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := NewMatrix(2, 3).LU(); err == nil {
		t.Error("LU of non-square matrix succeeded")
	}
}

func TestLUPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	f, err := a.LU()
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.Solve([]float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 7 || x[1] != 3 {
		t.Errorf("x = %v, want [7 3]", x)
	}
}

// Property: LU solves random well-conditioned systems to high accuracy.
func TestLUSolveRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Add(i, i, float64(n)) // diagonal dominance
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(want, b)
		lu, err := a.LU()
		if err != nil {
			return false
		}
		x, err := lu.Solve(b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 3)
	c, err := a.Cholesky()
	if err != nil {
		t.Fatal(err)
	}
	x, err := c.Solve([]float64{10, 8})
	if err != nil {
		t.Fatal(err)
	}
	// A·x = b with x = [1.75, 1.5]: 4*1.75+2*1.5 = 10; 2*1.75+3*1.5 = 8.
	if math.Abs(x[0]-1.75) > 1e-12 || math.Abs(x[1]-1.5) > 1e-12 {
		t.Errorf("x = %v, want [1.75 1.5]", x)
	}
}

func TestCholeskyNotSPD(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, -1)
	a.Set(1, 1, 1)
	if _, err := a.Cholesky(); !errors.Is(err, ErrNotSPD) {
		t.Errorf("err = %v, want ErrNotSPD", err)
	}
}

// Property: Cholesky solves random SPD systems (A = MᵀM + I).
func TestCholeskySolveRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		m := NewMatrix(n, n)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += m.At(k, i) * m.At(k, j)
				}
				a.Set(i, j, s)
			}
			a.Add(i, i, 1)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(want, b)
		c, err := a.Cholesky()
		if err != nil {
			return false
		}
		x, err := c.Solve(b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVectorHelpers(t *testing.T) {
	a := []float64{3, 4}
	if Norm2(a) != 5 {
		t.Errorf("Norm2 = %v", Norm2(a))
	}
	if NormInf([]float64{1, -7, 3}) != 7 {
		t.Error("NormInf")
	}
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Error("Dot")
	}
	y := []float64{1, 1}
	Axpy(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Errorf("Axpy = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 1.5 || y[1] != 2.5 {
		t.Errorf("Scale = %v", y)
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	x := []float64{1, 2, 3}
	dst := make([]float64, 3)
	m.MulVec(x, dst)
	for i := range x {
		if dst[i] != x[i] {
			t.Errorf("I·x = %v", dst)
		}
	}
}

func TestQRSolveSquare(t *testing.T) {
	a := NewMatrix(3, 3)
	vals := [][]float64{{2, 1, 1}, {4, -6, 0}, {-2, 7, 2}}
	for i := range vals {
		for j, v := range vals[i] {
			a.Set(i, j, v)
		}
	}
	f, err := a.QR()
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.Solve([]float64{5, -2, 9})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 2}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestQRLeastSquares(t *testing.T) {
	// Overdetermined: fit y = a + b*t at 4 points with exact data.
	a := NewMatrix(4, 2)
	b := make([]float64, 4)
	for i := 0; i < 4; i++ {
		tt := float64(i)
		a.Set(i, 0, 1)
		a.Set(i, 1, tt)
		b[i] = 2 + 3*tt
	}
	f, err := a.QR()
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [2 3]", x)
	}
}

func TestQRShapeAndSingular(t *testing.T) {
	if _, err := NewMatrix(2, 3).QR(); err == nil {
		t.Error("wide matrix accepted")
	}
	z := NewMatrix(3, 2) // zero column -> singular
	z.Set(0, 0, 1)
	z.Set(1, 0, 2)
	z.Set(2, 0, 3)
	if _, err := z.QR(); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

// Property: QR and LU agree on random square well-conditioned systems,
// and QR least-squares solutions satisfy the normal equations.
func TestQRSolveRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := n + rng.Intn(5)
		a := NewMatrix(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			if i < n {
				a.Add(i, i, float64(n))
			}
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		qr, err := a.QR()
		if err != nil {
			return false
		}
		x, err := qr.Solve(b)
		if err != nil {
			return false
		}
		// Residual must be orthogonal to the column space: Aᵀ(Ax - b) ≈ 0.
		r := make([]float64, m)
		a.MulVec(x, r)
		for i := range r {
			r[i] -= b[i]
		}
		for j := 0; j < n; j++ {
			s := 0.0
			for i := 0; i < m; i++ {
				s += a.At(i, j) * r[i]
			}
			if math.Abs(s) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
