// Package integration holds cross-module tests exercising whole pipeline
// paths: RDL source through compilation, simulated-xlc compilation of the
// emitted C, solver-level equivalence of every code path, and full
// parameter-estimation loops.
package integration

import (
	"math"
	"testing"

	"rms/internal/ccomp"
	"rms/internal/codegen"
	"rms/internal/core"
	"rms/internal/dataset"
	"rms/internal/estimator"
	"rms/internal/linalg"
	"rms/internal/nlopt"
	"rms/internal/ode"
	"rms/internal/opt"
	"rms/internal/vulcan"
)

// TestFullPipelineFromRDL drives the quickstart model through every
// artifact and cross-checks the three executable forms: the optimized
// tape, the unoptimized tape, and the ccomp-compiled generated C.
func TestFullPipelineFromRDL(t *testing.T) {
	const src = `
species Bridge = "C[S:1][S:2]C" init 1.0
species Methyl = "[CH3:3]"      init 0.5
reaction Scission {
    reactants Bridge
    disconnect 1:1 1:2
    rate K_sc
}
reaction Cap {
    reactants Bridge, Methyl
    disconnect 1:1 1:2
    connect    1:1 2:3
    rate K_cap
}`
	full, err := core.CompileRDL(src, core.Config{Optimize: opt.Full()})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := core.CompileRDL(src, core.Config{Optimize: opt.Options{}})
	if err != nil {
		t.Fatal(err)
	}
	cres, err := ccomp.Compile(full.C, ccomp.Options{Level: 4})
	if err != nil {
		t.Fatal(err)
	}
	y := full.System.Y0
	k := []float64{3, 2} // K_cap, K_sc (sorted)
	n := len(y)
	d1 := make([]float64, n)
	d2 := make([]float64, n)
	d3 := make([]float64, n)
	full.Tape.NewEvaluator().Eval(y, k, d1)
	raw.Tape.NewEvaluator().Eval(y, k, d2)
	cres.Program.NewEvaluator().Eval(y, k, d3)
	for i := range d1 {
		if math.Abs(d1[i]-d2[i]) > 1e-12 || math.Abs(d1[i]-d3[i]) > 1e-12 {
			t.Errorf("eq %d: optimized %v, raw %v, ccomp %v", i, d1[i], d2[i], d3[i])
		}
	}
	// The optimizer strictly reduced the op count.
	m1, a1 := full.Tape.CountOps()
	m2, a2 := raw.Tape.CountOps()
	if m1+a1 >= m2+a2 {
		t.Errorf("no reduction: optimized %d ops, raw %d", m1+a1, m2+a2)
	}
}

// TestVulcanizationSolveAllPaths integrates the vulcanization model with
// both solvers, with and without the analytic Jacobian, and demands
// agreement.
func TestVulcanizationSolveAllPaths(t *testing.T) {
	net, err := vulcan.Network(10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.CompileNetwork(net, core.Config{
		Optimize:         opt.Full(),
		AnalyticJacobian: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jacobian == nil {
		t.Fatal("no Jacobian compiled")
	}
	k, err := vulcan.RateVector(res.System.Rates, vulcan.TrueRates)
	if err != nil {
		t.Fatal(err)
	}
	n := len(res.System.Y0)
	solve := func(useJac, stiff bool) []float64 {
		ev := res.Tape.NewEvaluator()
		rhs := func(_ float64, y, dy []float64) { ev.Eval(y, k, dy) }
		opts := ode.Options{RTol: 1e-9, ATol: 1e-12}
		if useJac {
			je := res.Jacobian.NewEvaluator()
			opts.Jacobian = func(_ float64, y []float64, dst *linalg.Matrix) {
				je.Eval(y, k, dst)
			}
		}
		y := append([]float64(nil), res.System.Y0...)
		var err error
		if stiff {
			err = ode.NewBDF(rhs, n, opts).Integrate(0, 1.5, y)
		} else {
			err = ode.NewRKV65(rhs, n, opts).Integrate(0, 1.5, y)
		}
		if err != nil {
			t.Fatal(err)
		}
		return y
	}
	bdfFD := solve(false, true)
	bdfAJ := solve(true, true)
	rkv := solve(false, false)
	for i := range bdfFD {
		scale := math.Max(1e-6, math.Abs(bdfFD[i]))
		if math.Abs(bdfFD[i]-bdfAJ[i])/scale > 1e-5 {
			t.Errorf("species %d: BDF fd %v vs analytic %v", i, bdfFD[i], bdfAJ[i])
		}
		if math.Abs(bdfFD[i]-rkv[i])/scale > 1e-5 {
			t.Errorf("species %d: BDF %v vs RKV %v", i, bdfFD[i], rkv[i])
		}
	}
}

// TestEstimationRecoversVulcanizationRates is the paper's workflow end to
// end: synthesize crosslink curves from ground truth, fit two free rate
// constants with the parallel estimator using the analytic Jacobian.
func TestEstimationRecoversVulcanizationRates(t *testing.T) {
	net, err := vulcan.Network(9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.CompileNetwork(net, core.Config{
		Optimize:         opt.Full(),
		AnalyticJacobian: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	kTrue, err := vulcan.RateVector(res.System.Rates, vulcan.TrueRates)
	if err != nil {
		t.Fatal(err)
	}
	prop := vulcan.CrosslinkProperty(res.System)

	// Ground-truth curve via one accurate solve.
	ev := res.Tape.NewEvaluator()
	rhs := func(_ float64, y, dy []float64) { ev.Eval(y, kTrue, dy) }
	solver := ode.NewBDF(rhs, len(res.System.Y0), ode.Options{RTol: 1e-10, ATol: 1e-13})
	const samples = 200
	vals := make([]float64, samples+1)
	y := append([]float64(nil), res.System.Y0...)
	vals[0] = prop(y)
	for i := 1; i <= samples; i++ {
		if err := solver.Integrate(1.5*float64(i-1)/samples, 1.5*float64(i)/samples, y); err != nil {
			t.Fatal(err)
		}
		vals[i] = prop(y)
	}
	curve := func(tt float64) float64 {
		x := tt / 1.5 * samples
		i := int(x)
		if i >= samples {
			return vals[samples]
		}
		f := x - float64(i)
		return vals[i]*(1-f) + vals[i+1]*f
	}
	files := []*dataset.File{
		dataset.Synthesize(curve, dataset.SynthesizeOptions{Name: "f1", Records: 80, T0: 0, T1: 1.5}),
		dataset.Synthesize(curve, dataset.SynthesizeOptions{Name: "f2", Records: 50, T0: 0, T1: 1.5, Seed: 1}),
	}
	model := res.Model(prop, ode.Options{RTol: 1e-9, ATol: 1e-12})
	est, err := estimator.New(model, files, estimator.Config{Ranks: 2, LoadBalance: true})
	if err != nil {
		t.Fatal(err)
	}
	nRates := len(res.System.Rates)
	lower := make([]float64, nRates)
	upper := make([]float64, nRates)
	start := make([]float64, nRates)
	free := map[string]bool{"K_cross": true, "K_sc": true}
	for i, name := range res.System.Rates {
		truth := vulcan.TrueRates[name]
		if free[name] {
			lower[i], upper[i], start[i] = truth/8, truth*8, truth*2
		} else {
			lower[i], upper[i], start[i] = truth, truth, truth
		}
	}
	fit, err := est.Estimate(start, lower, upper, nlopt.Options{MaxIter: 40, RelStep: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range res.System.Rates {
		if !free[name] {
			continue
		}
		truth := vulcan.TrueRates[name]
		if math.Abs(fit.X[i]-truth)/truth > 0.02 {
			t.Errorf("%s = %v, want %v within 2%% (rnorm %g)", name, fit.X[i], truth, fit.RNorm)
		}
	}
}

// TestCcompOnVulcanizationC compiles the generated C of a mid-size
// vulcanization case through the simulated xlc at each level and checks
// numeric agreement with the reference tape.
func TestCcompOnVulcanizationC(t *testing.T) {
	net, err := vulcan.Network(12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.CompileNetwork(net, core.Config{Optimize: opt.Full()})
	if err != nil {
		t.Fatal(err)
	}
	k, _ := vulcan.RateVector(res.System.Rates, vulcan.TrueRates)
	y := make([]float64, len(res.System.Y0))
	for i := range y {
		y[i] = 0.1 + 0.02*float64(i%7)
	}
	ref := make([]float64, len(y))
	res.Tape.NewEvaluator().Eval(y, k, ref)
	for _, level := range []int{0, 2, 4} {
		cres, err := ccomp.Compile(res.C, ccomp.Options{Level: level})
		if err != nil {
			t.Fatalf("-O%d: %v", level, err)
		}
		got := make([]float64, len(y))
		kc := k
		if cres.Program.NumK != len(k) {
			kc = append(append([]float64{}, k...), make([]float64, cres.Program.NumK-len(k))...)
		}
		cres.Program.NewEvaluator().Eval(y, kc, got)
		for i := range ref {
			if math.Abs(ref[i]-got[i]) > 1e-9*math.Max(1, math.Abs(ref[i])) {
				t.Errorf("-O%d eq %d: %v vs %v", level, i, got[i], ref[i])
			}
		}
		if level >= 2 && cres.EmittedOps > cres.SourceOps {
			t.Errorf("-O%d emitted %d ops from %d source ops", level, cres.EmittedOps, cres.SourceOps)
		}
	}
}

// TestJacobianSpeedsUpEstimator: the analytic Jacobian reduces the
// modeled work of an objective evaluation on a stiff model.
func TestJacobianSpeedsUpEstimator(t *testing.T) {
	net, err := vulcan.Network(10)
	if err != nil {
		t.Fatal(err)
	}
	withJac, err := core.CompileNetwork(net, core.Config{Optimize: opt.Full(), AnalyticJacobian: true})
	if err != nil {
		t.Fatal(err)
	}
	prop := vulcan.CrosslinkProperty(withJac.System)
	k, _ := vulcan.RateVector(withJac.System.Rates, vulcan.TrueRates)
	files := []*dataset.File{
		dataset.Synthesize(func(t float64) float64 { return t }, dataset.SynthesizeOptions{
			Name: "f", Records: 60, T0: 0, T1: 1.5,
		}),
	}
	run := func(jac *codegen.JacobianProgram) float64 {
		model := &estimator.Model{
			Prog: withJac.Tape, Y0: withJac.System.Y0, Property: prop, Stiff: true,
			SolverOpts:  ode.Options{RTol: 1e-8, ATol: 1e-11},
			AnalyticJac: jac,
		}
		est, err := estimator.New(model, files, estimator.Config{Ranks: 1})
		if err != nil {
			t.Fatal(err)
		}
		r := make([]float64, est.ResidualDim())
		if err := est.Objective(k, r); err != nil {
			t.Fatal(err)
		}
		return est.ModeledOps()
	}
	fd := run(nil)
	aj := run(withJac.Jacobian)
	if aj >= fd {
		t.Errorf("analytic Jacobian work %v >= finite-difference work %v", aj, fd)
	}
	t.Logf("objective work: finite differences %.3g ops, analytic %.3g ops (%.2fx)",
		fd, aj, fd/aj)
}

// TestConservationAlongSolve: the network's detected linear invariants
// stay constant along a stiff solve of the compiled model — a global
// correctness check spanning the network analysis, the optimizer, the
// code generator and the integrator.
func TestConservationAlongSolve(t *testing.T) {
	net, err := vulcan.Network(10)
	if err != nil {
		t.Fatal(err)
	}
	laws := net.ConservationLaws()
	if len(laws) == 0 {
		t.Fatal("vulcanization network has no detected invariants")
	}
	res, err := core.CompileNetwork(net, core.Config{Optimize: opt.Full()})
	if err != nil {
		t.Fatal(err)
	}
	k, _ := vulcan.RateVector(res.System.Rates, vulcan.TrueRates)
	ev := res.Tape.NewEvaluator()
	rhs := func(_ float64, y, dy []float64) { ev.Eval(y, k, dy) }
	solver := ode.NewBDF(rhs, len(res.System.Y0), ode.Options{RTol: 1e-9, ATol: 1e-12})
	y := append([]float64(nil), res.System.Y0...)
	initial := make([]float64, len(laws))
	dot := func(c, y []float64) float64 {
		s := 0.0
		for i := range c {
			s += c[i] * y[i]
		}
		return s
	}
	for li, c := range laws {
		initial[li] = dot(c, y)
	}
	for _, tEnd := range []float64{0.5, 1.0, 2.0} {
		if err := solver.Integrate(tEnd-0.5, tEnd, y); err != nil {
			t.Fatal(err)
		}
		for li, c := range laws {
			now := dot(c, y)
			scale := math.Max(1, math.Abs(initial[li]))
			if math.Abs(now-initial[li])/scale > 1e-6 {
				t.Errorf("t=%v: invariant %d drifted %v -> %v (%s)",
					tEnd, li, initial[li], now, net.FormatLaw(c))
			}
		}
	}
}
