package integration

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"rms/internal/core"
	"rms/internal/linalg"
	"rms/internal/ode"
	"rms/internal/opt"
	"rms/internal/parallel"
	"rms/internal/vulcan"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files from the current build")

const (
	goldenVariants = 10
	goldenTEnd     = 1.5
	goldenFile     = "golden_vulcan10.txt"
)

// goldenSolve integrates the 10-variant vulcanization model to t=1.5 under
// one solver configuration and returns the final concentrations.
func goldenSolve(t *testing.T, res *core.Result, k []float64, config string) []float64 {
	t.Helper()
	n := len(res.System.Y0)
	ev := res.Tape.NewEvaluator()
	opts := ode.Options{RTol: 1e-9, ATol: 1e-12}
	switch config {
	case "serial":
		// finite-difference Newton, serial tape
	case "parallel":
		pool := parallel.NewPool(4)
		defer pool.Close()
		ev.SetParallel(pool)
		ev.SetParallelThreshold(1) // the 34-equation tape is below the default
	case "dense":
		je := res.Jacobian.NewEvaluator()
		opts.Jacobian = func(_ float64, y []float64, dst *linalg.Matrix) {
			je.Eval(y, k, dst)
		}
	case "sparse":
		je := res.Jacobian.NewEvaluator()
		opts.Jacobian = func(_ float64, y []float64, dst *linalg.Matrix) {
			je.Eval(y, k, dst)
		}
		opts.SparsePattern = res.Jacobian.PatternCSR()
		opts.SparseJacobian = func(_ float64, y []float64, dst *linalg.CSR) {
			je.EvalCSR(y, k, dst)
		}
		opts.SparseMinDim = 2
		opts.SparseThreshold = 1
	default:
		t.Fatalf("unknown config %q", config)
	}
	rhs := func(_ float64, y, dy []float64) { ev.Eval(y, k, dy) }
	s := ode.NewBDF(rhs, n, opts)
	y := append([]float64(nil), res.System.Y0...)
	if err := s.Integrate(0, goldenTEnd, y); err != nil {
		t.Fatalf("%s: %v", config, err)
	}
	if config == "sparse" && !s.Sparse() {
		t.Fatal("sparse config stayed on the dense path")
	}
	if config != "sparse" && s.Sparse() {
		t.Fatalf("%s config took the sparse path", config)
	}
	return y
}

// TestGoldenVulcanization pins the end-to-end result of the smallest
// vulcanization example: the final-time concentrations at t=1.5 are
// committed in testdata and every solver configuration — serial tape,
// levelized-parallel tape, dense analytic Jacobian, sparse analytic
// Jacobian — must reproduce them. Regenerate with
// `go test ./internal/integration -run Golden -update-golden` after an
// intentional numerical change, and justify the diff in review.
func TestGoldenVulcanization(t *testing.T) {
	net, err := vulcan.Network(goldenVariants)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.CompileNetwork(net, core.Config{
		Optimize: opt.Full(), AnalyticJacobian: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	k, err := vulcan.RateVector(res.System.Rates, vulcan.TrueRates)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", goldenFile)
	if *updateGolden {
		y := goldenSolve(t, res, k, "serial")
		var b strings.Builder
		fmt.Fprintf(&b, "# Final concentrations of the %d-variant vulcanization model at t=%g\n",
			goldenVariants, goldenTEnd)
		fmt.Fprintf(&b, "# (BDF, RTol 1e-9, ATol 1e-12, true rates). Regenerate with -update-golden.\n")
		for i, name := range res.System.Species {
			fmt.Fprintf(&b, "%-12s %.12e\n", name, y[i])
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
	}

	want := readGolden(t, path, res.System.Species)
	for _, config := range []string{"serial", "parallel", "dense", "sparse"} {
		y := goldenSolve(t, res, k, config)
		for i, name := range res.System.Species {
			// The golden run used 1e-9 relative tolerance; allow two orders
			// of slack for path-dependent roundoff across configurations.
			tol := 1e-7 * (1 + math.Abs(want[i]))
			if math.Abs(y[i]-want[i]) > tol {
				t.Errorf("%s: %s = %.12e, golden %.12e (diff %.3e)",
					config, name, y[i], want[i], y[i]-want[i])
			}
		}
	}
}

// readGolden loads the committed concentrations, keyed and ordered by the
// compiled system's species list.
func readGolden(t *testing.T, path string, species []string) []float64 {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to generate)", err)
	}
	defer f.Close()
	byName := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("golden line %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		byName[fields[0]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(species))
	for i, name := range species {
		v, ok := byName[name]
		if !ok {
			t.Fatalf("golden file misses species %q", name)
		}
		want[i] = v
	}
	return want
}
