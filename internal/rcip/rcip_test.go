package rcip

import (
	"strings"
	"testing"

	"rms/internal/network"
)

func TestParseValuesAndExpressions(t *testing.T) {
	tab, err := Parse(`
# kinetic constants from the quantum-chemistry runs
K_A  = 5
K_B  = K_A * 2 + 1
K_CD = 11
K_E  = (K_A + 1) * 2 - K_A
`)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"K_A": 5, "K_B": 11, "K_CD": 11, "K_E": 7}
	for name, v := range want {
		if got := tab.Values[name]; got != v {
			t.Errorf("%s = %v, want %v", name, got, v)
		}
	}
	if got := tab.Defined(); len(got) != 4 || got[0] != "K_A" || got[3] != "K_E" {
		t.Errorf("Defined = %v", got)
	}
}

func TestValueUnification(t *testing.T) {
	tab, err := Parse(`
K_A  = 5
K_B  = 11
K_CD = 11
K_z  = 2 + 9
`)
	if err != nil {
		t.Fatal(err)
	}
	// K_B, K_CD and K_z share the value 11; the canonically smallest name
	// (K_B) represents the class.
	for _, name := range []string{"K_B", "K_CD", "K_z"} {
		if got := tab.CanonicalName(name); got != "K_B" {
			t.Errorf("canonical(%s) = %s, want K_B", name, got)
		}
	}
	if got := tab.CanonicalName("K_A"); got != "K_A" {
		t.Errorf("canonical(K_A) = %s", got)
	}
	if got := tab.CanonicalName("K_undefined"); got != "K_undefined" {
		t.Errorf("canonical of undefined = %s", got)
	}
}

func TestApplyRenamesNetworkRates(t *testing.T) {
	tab, err := Parse("K_A = 3\nK_B = 3\nK_C = 4")
	if err != nil {
		t.Fatal(err)
	}
	n := network.New()
	n.AddSpecies("X", "", 1)
	n.AddSpecies("Y", "", 0)
	n.AddReaction("r1", "K_A", []string{"X"}, []string{"Y"})
	n.AddReaction("r2", "K_B", []string{"Y"}, []string{"X"})
	n.AddReaction("r3", "K_C", []string{"X"}, []string{"Y"})
	rates := tab.Apply(n)
	if len(rates) != 2 || rates[0] != "K_A" || rates[1] != "K_C" {
		t.Errorf("rates after Apply = %v, want [K_A K_C]", rates)
	}
	if n.Reactions[1].Rate != "K_A" {
		t.Errorf("r2 rate = %s, want K_A (unified with K_B)", n.Reactions[1].Rate)
	}
}

func TestBounds(t *testing.T) {
	tab, err := Parse(`
K_sc in [0.01, 10] start 0.5
K_d  in [1, 2]
`)
	if err != nil {
		t.Fatal(err)
	}
	b := tab.Bounds["K_sc"]
	if b.Lower != 0.01 || b.Upper != 10 || b.Start != 0.5 {
		t.Errorf("K_sc bound = %+v", b)
	}
	d := tab.Bounds["K_d"]
	if d.Start != 1.5 {
		t.Errorf("default start = %v, want midpoint 1.5", d.Start)
	}
}

func TestNegativeNumbers(t *testing.T) {
	tab, err := Parse("K_A = -3\nK_B = 2 - -1\nK_c in [-5, -1]")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Values["K_A"] != -3 || tab.Values["K_B"] != 3 {
		t.Errorf("values = %v", tab.Values)
	}
	if b := tab.Bounds["K_c"]; b.Lower != -5 || b.Upper != -1 {
		t.Errorf("bound = %+v", b)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"not a rate name", `Alpha = 3`, "not a rate-constant"},
		{"dup", "K_A = 1\nK_A = 2", "defined twice"},
		{"forward ref", "K_B = K_A", "before definition"},
		{"bad token", "K_A = =", "expected a constant expression"},
		{"empty interval", "K_A in [5, 2]", "empty bound"},
		{"start outside", "K_A in [1, 2] start 9", "outside"},
		{"dup bounds", "K_A in [1,2]\nK_A in [1,2]", "twice"},
		{"missing bracket", "K_A in 1, 2]", "expected '['"},
		{"trailing junk", "K_A = ", "expected a constant expression"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: parsed, want error with %q", c.name, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.wantSub)
		}
	}
}

// The §3.3 scenario end to end: constants renamed by common value let the
// equation table merge terms across reactions with nominally different
// constants.
func TestUnificationEnablesMerging(t *testing.T) {
	tab, err := Parse("K_f = 7\nK_g = 7")
	if err != nil {
		t.Fatal(err)
	}
	n := network.New()
	n.AddSpecies("A", "", 1)
	n.AddSpecies("B", "", 0)
	n.AddSpecies("C", "", 0)
	n.AddReaction("r1", "K_f", []string{"A"}, []string{"B"})
	n.AddReaction("r2", "K_g", []string{"A"}, []string{"C"})
	tab.Apply(n)
	if n.Reactions[0].Rate != n.Reactions[1].Rate {
		t.Error("equal-valued constants not unified")
	}
}
