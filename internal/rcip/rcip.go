// Package rcip is the Rate Constant Information Processor: the component
// that takes the chemist's kinetic-parameter definitions — some constants
// defined directly as numbers (obtained from quantum-chemistry
// calculations à la Gaussian '03), others as arithmetic expressions of
// those — evaluates them, attaches optimization bounds, and associates
// the constants with the reaction network.
//
// Crucially for the optimizer, the RCIP renames rate constants based on
// common values (§3.3): two constants defined to the same value become
// one name, so the algebraic optimizer can treat a variable's name as a
// proxy for its value and merge the corresponding terms.
//
// The input language, one statement per line ('#' comments):
//
//	K_A  = 5
//	K_B  = K_A * 2 + 1
//	K_CD = 11                      # same value as K_B: unified
//	K_sc in [0.01, 10] start 0.5   # bounds for the parameter estimator
package rcip

import (
	"fmt"
	"sort"

	"rms/internal/expr"
	"rms/internal/network"
	"rms/internal/rdl"
)

// Bound is a chemist-supplied constraint for the non-linear optimizer.
type Bound struct {
	Lower, Upper float64
	// Start is the initial guess (defaults to the midpoint).
	Start float64
}

// Table is the processed rate-constant information.
type Table struct {
	// Values holds the evaluated value of every defined constant.
	Values map[string]float64
	// Bounds holds the estimation bounds for constants that have them.
	Bounds map[string]Bound
	// Canonical maps every defined name to its value-class
	// representative: the canonically smallest name among those sharing a
	// value.
	Canonical map[string]string
	// order preserves definition order for deterministic reporting.
	order []string
}

// Parse processes RCIP input.
func Parse(src string) (*Table, error) {
	toks, err := rdl.LexAll(src)
	if err != nil {
		return nil, fmt.Errorf("rcip: %w", err)
	}
	t := &Table{
		Values:    make(map[string]float64),
		Bounds:    make(map[string]Bound),
		Canonical: make(map[string]string),
	}
	p := &parser{toks: toks, table: t}
	for !p.eof() {
		if err := p.statement(); err != nil {
			return nil, err
		}
	}
	t.unifyByValue()
	return t, nil
}

type parser struct {
	toks  []rdl.Token
	pos   int
	table *Table
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) cur() rdl.Token {
	if p.eof() {
		return rdl.Token{Kind: rdl.TokEOF}
	}
	return p.toks[p.pos]
}

func (p *parser) next() rdl.Token {
	t := p.cur()
	if !p.eof() {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("rcip:%d:%d: %s", t.Line, t.Col, fmt.Sprintf(format, args...))
}

func (p *parser) statement() error {
	name := p.next()
	if name.Kind != rdl.TokIdent {
		return p.errf("expected a rate-constant name, found %v", name)
	}
	if !expr.IsRateConstant(name.Text) {
		return p.errf("%q is not a rate-constant name (K/k prefix)", name.Text)
	}
	switch t := p.next(); t.Kind {
	case rdl.TokAssign:
		if _, dup := p.table.Values[name.Text]; dup {
			return p.errf("%q defined twice", name.Text)
		}
		v, err := p.expression()
		if err != nil {
			return err
		}
		p.table.Values[name.Text] = v
		p.table.order = append(p.table.order, name.Text)
		return nil
	case rdl.TokIdent:
		if t.Text != "in" {
			return p.errf("expected '=' or 'in', found %q", t.Text)
		}
		return p.boundStmt(name.Text)
	default:
		return p.errf("expected '=' or 'in' after %q", name.Text)
	}
}

func (p *parser) boundStmt(name string) error {
	if t := p.next(); t.Kind != rdl.TokLBracket {
		return p.errf("expected '[' after 'in'")
	}
	lo, err := p.number()
	if err != nil {
		return err
	}
	if t := p.next(); t.Kind != rdl.TokComma {
		return p.errf("expected ',' between bounds")
	}
	hi, err := p.number()
	if err != nil {
		return err
	}
	if t := p.next(); t.Kind != rdl.TokRBracket {
		return p.errf("expected ']' after bounds")
	}
	if lo > hi {
		return p.errf("empty bound interval [%g, %g] for %q", lo, hi, name)
	}
	b := Bound{Lower: lo, Upper: hi, Start: (lo + hi) / 2}
	if p.cur().Kind == rdl.TokIdent && p.cur().Text == "start" {
		p.next()
		s, err := p.number()
		if err != nil {
			return err
		}
		if s < lo || s > hi {
			return p.errf("start %g outside [%g, %g] for %q", s, lo, hi, name)
		}
		b.Start = s
	}
	if _, dup := p.table.Bounds[name]; dup {
		return p.errf("bounds for %q given twice", name)
	}
	p.table.Bounds[name] = b
	return nil
}

func (p *parser) number() (float64, error) {
	neg := false
	if p.cur().Kind == rdl.TokMinus {
		p.next()
		neg = true
	}
	t := p.next()
	var v float64
	switch t.Kind {
	case rdl.TokInt:
		v = float64(t.Int)
	case rdl.TokFloat:
		v = t.Num
	default:
		return 0, p.errf("expected a number, found %v", t)
	}
	if neg {
		v = -v
	}
	return v, nil
}

// expression := term (('+'|'-') term)*
func (p *parser) expression() (float64, error) {
	v, err := p.term()
	if err != nil {
		return 0, err
	}
	for {
		switch p.cur().Kind {
		case rdl.TokPlus:
			p.next()
			r, err := p.term()
			if err != nil {
				return 0, err
			}
			v += r
		case rdl.TokMinus:
			p.next()
			r, err := p.term()
			if err != nil {
				return 0, err
			}
			v -= r
		default:
			return v, nil
		}
	}
}

func (p *parser) term() (float64, error) {
	v, err := p.factor()
	if err != nil {
		return 0, err
	}
	for p.cur().Kind == rdl.TokStar {
		p.next()
		r, err := p.factor()
		if err != nil {
			return 0, err
		}
		v *= r
	}
	return v, nil
}

func (p *parser) factor() (float64, error) {
	t := p.cur()
	switch t.Kind {
	case rdl.TokInt:
		p.next()
		return float64(t.Int), nil
	case rdl.TokFloat:
		p.next()
		return t.Num, nil
	case rdl.TokMinus:
		p.next()
		v, err := p.factor()
		return -v, err
	case rdl.TokIdent:
		p.next()
		v, ok := p.table.Values[t.Text]
		if !ok {
			return 0, fmt.Errorf("rcip:%d:%d: %q used before definition", t.Line, t.Col, t.Text)
		}
		return v, nil
	case rdl.TokLParen:
		p.next()
		v, err := p.expression()
		if err != nil {
			return 0, err
		}
		if p.next().Kind != rdl.TokRParen {
			return 0, p.errf("expected ')'")
		}
		return v, nil
	}
	return 0, p.errf("expected a constant expression, found %v", t)
}

// unifyByValue builds the canonical-name map: all constants sharing a
// value map to the canonically smallest name of the class.
func (t *Table) unifyByValue() {
	classes := make(map[float64][]string)
	for name, v := range t.Values {
		classes[v] = append(classes[v], name)
	}
	for _, names := range classes {
		sort.Slice(names, func(i, j int) bool { return expr.TermLess(names[i], names[j]) })
		for _, n := range names {
			t.Canonical[n] = names[0]
		}
	}
}

// CanonicalName returns the value-class representative of a defined
// constant (the name itself if undefined).
func (t *Table) CanonicalName(name string) string {
	if c, ok := t.Canonical[name]; ok {
		return c
	}
	return name
}

// Apply rewrites every reaction's rate constant to its canonical name,
// returning the list of distinct canonical rates in use. Rates without a
// definition are left alone (they stay free parameters for the
// estimator); rates with definitions must evaluate.
func (t *Table) Apply(net *network.Network) []string {
	for _, r := range net.Reactions {
		r.Rate = t.CanonicalName(r.Rate)
	}
	return net.RateNames()
}

// Defined lists the defined constants in definition order.
func (t *Table) Defined() []string {
	return append([]string(nil), t.order...)
}
