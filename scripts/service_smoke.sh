#!/bin/sh
# Service smoke test: start the rmsd daemon on port 0, drive it over
# HTTP with rmsctl, and hold the served results to the standalone CLIs
# (docs/service.md has the API reference).
#
# Checks:
#   readiness     bound address parsed from stderr, /healthz polled (no
#                 fixed ports, no sleep-based readiness)
#   cache         second identical compile returns the same model id
#                 marked (cached); /metrics shows rms_service_cache_hits
#   simulate      rmsctl simulate CSV is byte-identical to rmssim
#   fit           rmsctl fit table rows match rmsrun on the same data
#   shutdown      SIGTERM drains and exits cleanly
#
# Requires only the go toolchain and a POSIX shell (curl or wget,
# whichever is present; falls back to a tiny go fetcher otherwise).
set -eu

cd "$(dirname "$0")/.."

work=$(mktemp -d "${TMPDIR:-/tmp}/service_smoke.XXXXXX")
trap 'status=$?; [ -n "${rmsdpid:-}" ] && kill "$rmsdpid" 2>/dev/null || true; rm -rf "$work"; exit $status' EXIT INT TERM

cat >"$work/m.rdl" <<'EOF'
species A = "[CH3:1][CH3:2]" init 1.0
reaction Decompose {
    reactants A
    disconnect 1:1 1:2
    rate K_d
}
EOF
echo "K_d = 2" >"$work/r.rcip"

echo "== go build rmsd rmsctl rmssim rmsrun rmsgen"
go build -o "$work/" ./cmd/rmsd ./cmd/rmsctl ./cmd/rmssim ./cmd/rmsrun ./cmd/rmsgen

echo "== rmsd -listen 127.0.0.1:0 (background)"
"$work/rmsd" -listen 127.0.0.1:0 -queue 8 -workers 2 \
	-ckptdir "$work/ckpt" 2>"$work/stderr" &
rmsdpid=$!

# Readiness: the daemon picks a free port and prints it; wait for the
# line, then poll /healthz until it answers.
addr=""
i=0
while [ $i -lt 100 ]; do
	addr=$(sed -n 's#^rmsd: serving on http://##p' "$work/stderr" | head -n1)
	[ -n "$addr" ] && break
	if ! kill -0 "$rmsdpid" 2>/dev/null; then
		echo "FAIL: rmsd exited before serving:" >&2
		cat "$work/stderr" >&2
		exit 1
	fi
	sleep 0.1
	i=$((i + 1))
done
[ -n "$addr" ] || { echo "FAIL: no listen address after 10s" >&2; cat "$work/stderr" >&2; exit 1; }

fetch() {
	if command -v curl >/dev/null 2>&1; then
		curl -fsS --max-time 10 "http://$addr$1"
	elif command -v wget >/dev/null 2>&1; then
		wget -q -T 10 -O - "http://$addr$1"
	else
		go run ./scripts/httpget.go "http://$addr$1"
	fi
}

i=0
until health=$(fetch /healthz 2>/dev/null) && [ "$health" = "ok" ]; do
	i=$((i + 1))
	[ $i -lt 100 ] || { echo "FAIL: /healthz never answered ok" >&2; exit 1; }
	sleep 0.1
done
echo "   serving on $addr"

echo "== compile twice: content-addressed cache"
"$work/rmsctl" -addr "$addr" compile -rcip "$work/r.rcip" "$work/m.rdl" >"$work/c1"
"$work/rmsctl" -addr "$addr" compile -rcip "$work/r.rcip" "$work/m.rdl" >"$work/c2"
cat "$work/c1" "$work/c2"
grep -q '(compiled)$' "$work/c1" || { echo "FAIL: first compile not fresh" >&2; exit 1; }
grep -q '(cached)$' "$work/c2" || { echo "FAIL: second compile missed the cache" >&2; exit 1; }
id1=$(awk '{print $2}' "$work/c1"); id2=$(awk '{print $2}' "$work/c2")
[ "$id1" = "$id2" ] || { echo "FAIL: cache returned a different id" >&2; exit 1; }

fetch /metrics >"$work/metrics"
grep -q '^rms_service_cache_hits_total [1-9]' "$work/metrics" || \
	grep -q '^rms_service_cache_hits [1-9]' "$work/metrics" || {
	echo "FAIL: /metrics missing a nonzero rms_service_cache_hits:" >&2
	grep service "$work/metrics" >&2 || true
	exit 1
}

echo "== simulate: HTTP vs rmssim (byte-identical CSV)"
"$work/rmsctl" -addr "$addr" simulate -model "$id1" \
	-tend 1 -points 50 >"$work/http.csv"
"$work/rmssim" -rcip "$work/r.rcip" -tend 1 -points 50 \
	"$work/m.rdl" >"$work/cli.csv"
if ! cmp -s "$work/http.csv" "$work/cli.csv"; then
	echo "FAIL: served trajectory differs from rmssim:" >&2
	diff "$work/cli.csv" "$work/http.csv" | head >&2
	exit 1
fi
echo "   $(wc -l <"$work/cli.csv") rows identical"

echo "== fit: HTTP vs rmsrun on the vulcanization example"
"$work/rmsgen" -variants 9 -files 3 -records 40 -out "$work/data" >/dev/null
"$work/rmsctl" -addr "$addr" fit -variants 9 -data "$work/data" \
	-ranks 2 -maxiter 2 -free 1 >"$work/http.fit"
"$work/rmsrun" -variants 9 -data "$work/data" \
	-ranks 2 -maxiter 2 -free 1 >"$work/cli.fit"
# Only the fitted-value table (rmsrun repeats the names later in the
# confidence-interval table).
table='/^rate constant/{f=1; next} f && /^K_/ {print $1, $2} f && !/^K_/ {f=0}'
awk "$table" "$work/http.fit" >"$work/http.rates"
awk "$table" "$work/cli.fit" >"$work/cli.rates"
[ -s "$work/http.rates" ] || { echo "FAIL: no fitted rates in rmsctl output" >&2; exit 1; }
if ! cmp -s "$work/http.rates" "$work/cli.rates"; then
	echo "FAIL: served fit differs from rmsrun:" >&2
	diff "$work/cli.rates" "$work/http.rates" >&2
	exit 1
fi
grep '^converged=' "$work/http.fit" >"$work/http.conv"
grep '^converged=' "$work/cli.fit" >"$work/cli.conv"
if ! cmp -s "$work/http.conv" "$work/cli.conv"; then
	echo "FAIL: convergence summaries differ:" >&2
	diff "$work/cli.conv" "$work/http.conv" >&2
	exit 1
fi
echo "   $(wc -l <"$work/cli.rates") fitted rates identical; $(cat "$work/cli.conv")"

echo "== verify endpoint: cached vs fresh compilation"
"$work/rmsctl" -addr "$addr" verify -rcip "$work/r.rcip" "$work/m.rdl"

echo "== graceful shutdown (SIGTERM)"
kill -TERM "$rmsdpid"
i=0
while kill -0 "$rmsdpid" 2>/dev/null; do
	i=$((i + 1))
	[ $i -lt 100 ] || { echo "FAIL: rmsd did not exit within 10s of SIGTERM" >&2; exit 1; }
	sleep 0.1
done
wait "$rmsdpid" 2>/dev/null || true
rmsdpid=""
grep -q 'rmsd: shutdown' "$work/stderr" || {
	echo "FAIL: no shutdown line on stderr:" >&2
	cat "$work/stderr" >&2
	exit 1
}
echo "service smoke: OK"
