#!/bin/sh
# Bench regression gate: re-run the deterministic scheduler-scaling
# bench (rmsbench -json -skew) and compare the document against the
# committed BENCH_baseline.json with cmd/benchcmp's tolerance band.
# Wall-clock-derived fields (ModeledSec, *_ns / *_seconds metrics) are
# excluded; everything else — modeled op counts, speedups, scheduler
# decision counts, degradation/fault counters, metric families — must
# stay within the band. See docs/observability.md.
#
# Usage:
#   scripts/bench_compare.sh            # gate: exit 1 outside the band
#   scripts/bench_compare.sh -report    # print findings, always exit 0
#   scripts/bench_compare.sh -update    # re-seed BENCH_baseline.json
#
# Environment:
#   BENCH_TOL   relative tolerance (default 0.10)
set -eu

cd "$(dirname "$0")/.."

baseline=BENCH_baseline.json
tol="${BENCH_TOL:-0.10}"
mode=gate
for arg in "$@"; do
	case "$arg" in
	-update) mode=update ;;
	-report) mode=report ;;
	*)
		echo "usage: $0 [-report|-update]" >&2
		exit 2
		;;
	esac
done

# The baseline workload: skewed-corpus scheduler scaling. Everything it
# reports except wall-clock scaling replays a virtual clock, so the
# document is stable across hosts (docs/scheduler.md).
run_bench() {
	go run ./cmd/rmsbench -json -skew -variants 8 2>/dev/null
}

if [ "$mode" = update ]; then
	echo "== re-seeding $baseline (rmsbench -json -skew -variants 8)"
	run_bench >"$baseline"
	echo "wrote $baseline"
	exit 0
fi

if [ ! -f "$baseline" ]; then
	echo "bench_compare: $baseline missing — run '$0 -update' once to seed it" >&2
	exit 2
fi

current=$(mktemp "${TMPDIR:-/tmp}/bench_current.XXXXXX.json")
trap 'rm -f "$current"' EXIT

echo "== rmsbench -json -skew -variants 8 (fresh run)"
run_bench >"$current"

echo "== benchcmp -tol $tol $baseline"
if [ "$mode" = report ]; then
	go run ./cmd/benchcmp -report -tol "$tol" "$baseline" "$current"
else
	go run ./cmd/benchcmp -tol "$tol" "$baseline" "$current"
fi
