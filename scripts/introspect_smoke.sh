#!/bin/sh
# Introspection smoke test: start rmssim with -listen :0 on a long
# integration, scrape the live debug endpoints while it runs, and assert
# the responses are well-formed — the CI guard that the HTTP layer stays
# wired end to end (docs/observability.md has the endpoint reference).
#
# Checks:
#   /healthz      answers "ok"
#   /metrics      OpenMetrics exposition: expected families, # EOF
#   /debug/vars   checkpoint-enveloped JSON with the vars kind tag
#   /debug/events flight-recorder dump is served
#
# Requires only the go toolchain and a POSIX shell (curl or wget,
# whichever is present; falls back to a tiny go fetcher otherwise).
set -eu

cd "$(dirname "$0")/.."

work=$(mktemp -d "${TMPDIR:-/tmp}/introspect_smoke.XXXXXX")
trap 'status=$?; [ -n "${simpid:-}" ] && kill "$simpid" 2>/dev/null || true; rm -rf "$work"; exit $status' EXIT INT TERM

# A minimal one-reaction model: first-order decomposition of ethane.
# The integration horizon is sized so the process stays alive for the
# scrape (millions of output rows of a trivial ODE, a few seconds).
cat >"$work/m.rdl" <<'EOF'
species A = "[CH3:1][CH3:2]" init 1.0
reaction Decompose {
    reactants A
    disconnect 1:1 1:2
    rate K_d
}
EOF
echo "K_d = 2" >"$work/r.rcip"

echo "== go build ./cmd/rmssim"
go build -o "$work/rmssim" ./cmd/rmssim

echo "== rmssim -listen 127.0.0.1:0 (background)"
"$work/rmssim" -listen 127.0.0.1:0 -log warn \
	-rcip "$work/r.rcip" -tend 5000 -points 5000000 \
	"$work/m.rdl" >/dev/null 2>"$work/stderr" &
simpid=$!

# Wait for the bound address to appear on stderr.
addr=""
i=0
while [ $i -lt 100 ]; do
	addr=$(sed -n 's#^rmssim: introspection on http://##p' "$work/stderr" | head -n1)
	[ -n "$addr" ] && break
	if ! kill -0 "$simpid" 2>/dev/null; then
		echo "FAIL: rmssim exited before serving:" >&2
		cat "$work/stderr" >&2
		exit 1
	fi
	sleep 0.1
	i=$((i + 1))
done
if [ -z "$addr" ]; then
	echo "FAIL: no introspection address after 10s:" >&2
	cat "$work/stderr" >&2
	exit 1
fi

fetch() {
	if command -v curl >/dev/null 2>&1; then
		curl -fsS --max-time 10 "http://$addr$1"
	elif command -v wget >/dev/null 2>&1; then
		wget -q -T 10 -O - "http://$addr$1"
	else
		go run ./scripts/httpget.go "http://$addr$1"
	fi
}

# Readiness is /healthz answering, not the stderr line: poll it rather
# than sleeping a fixed amount and hoping the listener is up.
echo "== GET /healthz (readiness poll)"
i=0
until health=$(fetch /healthz 2>/dev/null) && [ "$health" = "ok" ]; do
	i=$((i + 1))
	[ $i -lt 100 ] || { echo "FAIL: /healthz never answered ok" >&2; exit 1; }
	sleep 0.1
done
echo "   serving on $addr"

echo "== GET /metrics"
fetch /metrics >"$work/metrics"
for family in "rms_ode_steps counter" "rms_tape_evals counter" "rms_ode_step_size histogram"; do
	grep -q "^# TYPE $family$" "$work/metrics" || {
		echo "FAIL: /metrics missing family '$family':" >&2
		cat "$work/metrics" >&2
		exit 1
	}
done
tail -n1 "$work/metrics" | grep -q '^# EOF$' || {
	echo "FAIL: /metrics missing # EOF terminator" >&2
	exit 1
}
echo "   $(grep -c '^# TYPE ' "$work/metrics") metric families, # EOF present"

echo "== GET /debug/vars"
fetch /debug/vars >"$work/vars"
grep -q '"kind": *"rms-introspect-vars"' "$work/vars" || {
	echo "FAIL: /debug/vars is not a rms-introspect-vars envelope:" >&2
	cat "$work/vars" >&2
	exit 1
}
grep -q '"program": *"rmssim"' "$work/vars" || {
	echo "FAIL: /debug/vars payload missing program name" >&2
	exit 1
}

echo "== GET /debug/events"
fetch /debug/events >"$work/events"
head -n1 "$work/events" | grep -q '^== flight recorder:' || {
	echo "FAIL: /debug/events did not serve the flight-recorder dump" >&2
	exit 1
}

kill "$simpid" 2>/dev/null || true
wait "$simpid" 2>/dev/null || true
simpid=""
echo "introspect smoke: OK"
