#!/bin/sh
# Repository checks: vet everything, race-test the concurrency-heavy
# packages (the simulated MPI runtime, the worker pool, the parallel
# estimator) and the numerical core the sparse Jacobian path touches
# (solver, linear algebra), give both parser fuzzers a short smoke run,
# then run the cross-stack conformance matrix (docs/testing.md). Run
# from the repository root; the full serial test suite is
# `go test ./...`.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go test -race (mpi, parallel, estimator, sched, ode, linalg, telemetry, introspect, codegen, service)"
go test -race ./internal/mpi/... ./internal/parallel/... ./internal/estimator/... \
	./internal/sched/... ./internal/ode/... ./internal/linalg/... \
	./internal/telemetry/... ./internal/introspect/... ./internal/codegen/... \
	./internal/service/... ./cmd/rmsd/...

echo "== introspection endpoints smoke (rmssim -listen)"
./scripts/introspect_smoke.sh

echo "== service smoke (rmsd + rmsctl vs rmssim/rmsrun)"
./scripts/service_smoke.sh

echo "== fault-injection suite (-race)"
go test -race -run 'Fault|Recover|Watchdog|Inject|Penal|NaN|NonFinite|Flaky|Stall|Crash|Abort' \
	./internal/faults/... ./internal/mpi ./internal/estimator ./internal/nlopt \
	./internal/conformance

echo "== chaos soak (make chaos: degradation ladders, checkpoint/resume, budgets)"
make chaos

echo "== fuzz smoke (FuzzParseRDL, 10s)"
go test -fuzz=FuzzParseRDL -fuzztime=10s ./internal/rdl

echo "== fuzz smoke (FuzzParseSMILES, 10s)"
go test -fuzz=FuzzParseSMILES -fuzztime=10s ./internal/chem

echo "== batched-eval smoke (rmsbench -batch, small system)"
go run ./cmd/rmsbench -batch -variants 64 -evalms 50

echo "== scheduler skew smoke (rmsbench -skew, small model)"
go run ./cmd/rmsbench -skew -variants 8

echo "== conformance matrix (make verify)"
make verify

echo "ok"
