#!/bin/sh
# Repository checks: vet everything, then race-test the concurrency-heavy
# packages (the simulated MPI runtime, the worker pool, and the parallel
# estimator). Run from the repository root; the full serial test suite is
# `go test ./...`.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go test -race (mpi, parallel, estimator)"
go test -race ./internal/mpi/... ./internal/parallel/... ./internal/estimator/...

echo "ok"
