//go:build ignore

// httpget is the curl/wget fallback for introspect_smoke.sh: fetch one
// URL and print the body. Run it directly (go run scripts/httpget.go
// URL); the ignore tag keeps it out of the module build.
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: httpget URL")
		os.Exit(2)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "httpget:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintln(os.Stderr, "httpget:", resp.Status)
		os.Exit(1)
	}
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		fmt.Fprintln(os.Stderr, "httpget:", err)
		os.Exit(1)
	}
}
