// Quickstart: compile a tiny reaction model from RDL source, inspect
// every intermediate artifact (reaction network, ODEs, optimized C), and
// simulate the kinetics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rms"
	"rms/internal/ode"
)

// A minimal sulfur-exchange model: a disulfide bridge breaks
// homolytically, and a methyl radical caps the resulting thiyl radical.
const source = `
# Species: a dimethyl disulfide bridge, its thiyl fragment, a methyl
# radical, and the capped product.
species Bridge = "C[S:1][S:2]C" init 1.0
species Methyl = "[CH3:3]"      init 0.5

reaction Scission {
    reactants Bridge
    disconnect 1:1 1:2
    rate K_sc
}

reaction Cap {
    reactants Bridge, Methyl
    disconnect 1:1 1:2
    connect    1:1 2:3
    rate K_cap
}
`

func main() {
	res, err := rms.Compile(source, rms.Config{
		Optimize: rms.FullOptimization(),
		RCIP:     "K_sc = 2\nK_cap = 3",
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Reaction network (intermediate equations, Fig. 3 form) ===")
	fmt.Print(res.Network.Dump())

	fmt.Println("\n=== Generated ODEs (Fig. 5 form) ===")
	fmt.Print(res.System.String())

	fmt.Println("\n=== Op-count report ===")
	fmt.Println(res.Report())

	fmt.Println("\n=== Generated C ===")
	fmt.Print(res.C)

	// Simulate with the Adams-Gear solver: k vector in res.System.Rates
	// order.
	k := make([]float64, len(res.System.Rates))
	vals := map[string]float64{"K_sc": 2, "K_cap": 3}
	for i, name := range res.System.Rates {
		k[i] = vals[name]
	}
	ev := res.Tape.NewEvaluator()
	rhs := func(_ float64, y, dy []float64) { ev.Eval(y, k, dy) }
	solver := ode.NewBDF(rhs, len(res.System.Y0), ode.Options{RTol: 1e-8, ATol: 1e-10})

	y := append([]float64(nil), res.System.Y0...)
	fmt.Println("\n=== Simulation (concentrations over time) ===")
	fmt.Printf("%-6s", "t")
	for _, s := range res.System.Species {
		fmt.Printf(" %-12s", s)
	}
	fmt.Println()
	print := func(t float64) {
		fmt.Printf("%-6.2f", t)
		for _, v := range y {
			fmt.Printf(" %-12.6f", v)
		}
		fmt.Println()
	}
	print(0)
	for _, t := range []float64{0.1, 0.25, 0.5, 1, 2} {
		prev := 0.0
		if t > 0.1 {
			prev = tPrev(t)
		}
		if err := solver.Integrate(prev, t, y); err != nil {
			log.Fatal(err)
		}
		print(t)
	}
}

func tPrev(t float64) float64 {
	steps := []float64{0.1, 0.25, 0.5, 1, 2}
	for i, s := range steps {
		if s == t && i > 0 {
			return steps[i-1]
		}
	}
	return 0
}
