// Parallel objective function: the paper's Fig. 9 MPI pattern. Sixteen
// experimental data files of unequal size are distributed over simulated
// MPI ranks; each rank solves the stiff ODE system across its files'
// time grids and two AllReduce operations combine the global error vector
// and the per-file solve times. The run compares static block
// distribution against the dynamic load balancing algorithm across rank
// counts — Table 2's experiment.
//
//	go run ./examples/parallel
package main

import (
	"fmt"
	"log"

	"rms/internal/bench"
)

func main() {
	rows, err := bench.Table2(bench.Table2Config{
		Variants: 12,
		Files:    16,
		Records:  250,
		Calls:    3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parallel objective over 16 unequal data files")
	fmt.Println("(modeled parallel time = slowest rank's total solve time per call)")
	fmt.Println()
	fmt.Print(bench.FormatTable2(rows))
}
