// Workflow: the paper's Fig. 1 loop in one program. A chemist proposes a
// reaction model, the compiler turns it into ODEs, the parallel estimator
// fits the kinetic constants against experimental data, and the
// statistical analysis says whether the model explains the measurements —
// if not, the chemist revises the mechanism and repeats. Here the first
// proposal omits a reaction class (no reverse scission), fits poorly, and
// the revised mechanism fits tightly.
//
//	go run ./examples/workflow
package main

import (
	"fmt"
	"log"

	"rms"
	"rms/internal/dataset"
	"rms/internal/estimator"
	"rms/internal/nlopt"
	"rms/internal/ode"
	"rms/internal/stats"
)

// The true chemistry: a disulfide bridge breaks homolytically AND the
// radicals recombine (reversible scission).
const trueModel = `
species Bridge  = "C[S:1][S:2]C" init 1.0
reaction Scission {
    reactants Bridge
    disconnect 1:1 1:2
    rate K_f reverse K_r
}
`

// Proposal 1: the chemist forgets the recombination.
const proposal1 = `
species Bridge  = "C[S:1][S:2]C" init 1.0
reaction Scission {
    reactants Bridge
    disconnect 1:1 1:2
    rate K_f
}
`

func main() {
	// "Collect experimental data": solve the true model at K_f=2, K_r=5
	// and record the bridge concentration, which relaxes to an
	// equilibrium — the signature the irreversible model cannot produce.
	data := experiment()
	fmt.Printf("experimental data: %d files, %d+%d records\n",
		len(data), data[0].NumRecords(), data[1].NumRecords())

	fmt.Println("\n--- proposal 1: irreversible scission ---")
	good1 := fitAndAnalyze(proposal1, data)

	fmt.Println("\n--- proposal 2: reversible scission ---")
	good2 := fitAndAnalyze(trueModel, data)

	fmt.Println()
	switch {
	case good2.R2 > 0.999 && good1.R2 < good2.R2:
		fmt.Printf("verdict: revision accepted (R² %.4f → %.6f)\n", good1.R2, good2.R2)
	default:
		fmt.Println("verdict: inconclusive — collect more data")
	}
}

// experiment synthesizes the measured bridge-concentration curves from
// the ground-truth model.
func experiment() []*dataset.File {
	res, err := rms.Compile(trueModel, rms.Config{Optimize: rms.FullOptimization()})
	if err != nil {
		log.Fatal(err)
	}
	kTrue := rateVector(res, map[string]float64{"K_f": 2, "K_r": 5})
	curve := sampleBridge(res, kTrue)
	return []*dataset.File{
		dataset.Synthesize(curve, dataset.SynthesizeOptions{
			Name: "run1", Records: 120, T0: 0, T1: 3, Noise: 2e-4, Seed: 1}),
		dataset.Synthesize(curve, dataset.SynthesizeOptions{
			Name: "run2", Records: 80, T0: 0, T1: 3, Noise: 2e-4, Seed: 2}),
	}
}

// fitAndAnalyze compiles a proposed mechanism, fits its constants, and
// prints the Fig. 1 statistics.
func fitAndAnalyze(src string, data []*dataset.File) stats.Fit {
	res, err := rms.Compile(src, rms.Config{
		Optimize:         rms.FullOptimization(),
		AnalyticJacobian: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	model := res.Model(bridgeProperty(res), ode.Options{RTol: 1e-9, ATol: 1e-12})
	est, err := estimator.New(model, data, estimator.Config{Ranks: 2, LoadBalance: true})
	if err != nil {
		log.Fatal(err)
	}
	n := len(res.System.Rates)
	lower := make([]float64, n)
	upper := make([]float64, n)
	start := make([]float64, n)
	for i := range lower {
		lower[i], upper[i], start[i] = 0.01, 50, 1
	}
	fit, err := est.Estimate(start, lower, upper,
		nlopt.Options{MaxIter: 60, RelStep: 1e-4, KeepJacobian: true})
	if err != nil {
		log.Fatal(err)
	}
	good, ivs, err := est.Analyze(fit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted in %d iterations: %s\n", fit.Iterations, good)
	fmt.Print(stats.FormatIntervals(res.System.Rates, ivs))
	return good
}

func rateVector(res *rms.Result, vals map[string]float64) []float64 {
	k := make([]float64, len(res.System.Rates))
	for i, name := range res.System.Rates {
		k[i] = vals[name]
	}
	return k
}

// bridgeProperty reads the bridge concentration (y index of species
// "Bridge").
func bridgeProperty(res *rms.Result) func([]float64) float64 {
	idx := -1
	for i, s := range res.System.Species {
		if s == "Bridge" {
			idx = i
		}
	}
	return func(y []float64) float64 { return y[idx] }
}

// sampleBridge solves the model once on a fine grid and interpolates.
func sampleBridge(res *rms.Result, k []float64) dataset.PropertyFunc {
	prop := bridgeProperty(res)
	ev := res.Tape.NewEvaluator()
	rhs := func(_ float64, y, dy []float64) { ev.Eval(y, k, dy) }
	solver := ode.NewBDF(rhs, len(res.System.Y0), ode.Options{RTol: 1e-10, ATol: 1e-13})
	const samples = 300
	vals := make([]float64, samples+1)
	y := append([]float64(nil), res.System.Y0...)
	vals[0] = prop(y)
	for i := 1; i <= samples; i++ {
		if err := solver.Integrate(3*float64(i-1)/samples, 3*float64(i)/samples, y); err != nil {
			log.Fatal(err)
		}
		vals[i] = prop(y)
	}
	return func(t float64) float64 {
		x := t / 3 * samples
		i := int(x)
		if i < 0 {
			return vals[0]
		}
		if i >= samples {
			return vals[samples]
		}
		f := x - float64(i)
		return vals[i]*(1-f) + vals[i+1]*f
	}
}
