// Optimizer walkthrough: feed the paper's own worked examples through the
// algebraic optimizer and watch each pass transform them.
//
//	go run ./examples/optimizer
package main

import (
	"fmt"

	"rms/internal/expr"
	"rms/internal/opt"
)

func main() {
	fmt.Println("=== §3.1 Equation simplification ===")
	s := expr.NewSum()
	s.Add(expr.NewProduct(2, "k1", "B", "C"))
	s.Add(expr.NewProduct(3, "k1", "B", "C"))
	fmt.Println("2*k1*B*C + 3*k1*B*C  →ₘₑᵣᵍₑ ", s)

	fmt.Println("\n=== §3.2 Distributive optimization (Fig. 6) ===")
	eq := expr.SumOf(
		expr.NewProduct(1, "k1", "B", "C"),
		expr.NewProduct(1, "k1", "B", "D"),
		expr.NewProduct(1, "k1", "E", "F"),
	)
	m0, a0 := eq.CountOps()
	factored := opt.DistOpt(eq)
	m1, a1 := expr.CountOps(factored)
	fmt.Printf("before: %s   (%d muls, %d adds)\n", eq, m0, a0)
	fmt.Printf("after:  %s   (%d muls, %d adds)\n", factored, m1, a1)

	fmt.Println("\n=== §3.3 Common-subexpression elimination (Fig. 7) ===")
	mkSum := func(names ...string) expr.Node {
		terms := make([]expr.Node, len(names))
		for i, n := range names {
			terms[i] = expr.NewVar(n)
		}
		return expr.NewAdd(terms...)
	}
	rhs := []expr.Node{
		expr.NewMul(mkSum("A", "B", "C", "D"), expr.NewVar("k1"), expr.NewVar("E")),
		expr.NewMul(mkSum("A", "B", "C", "D"), expr.NewVar("k2"), expr.NewVar("F")),
		expr.NewMul(mkSum("A", "B", "C"), expr.NewVar("k3"), expr.NewVar("G")),
	}
	fmt.Println("input equations:")
	for i, r := range rhs {
		fmt.Printf("  d%c/dt = %s\n", 'A'+i, r)
	}
	res := opt.CSE(rhs, opt.CSEConfig{})
	fmt.Println("after CSE:")
	for _, d := range res.Temps {
		fmt.Printf("  temp[%d] = %s\n", d.ID, d.Body)
	}
	for i, r := range res.RHS {
		fmt.Printf("  d%c/dt = %s\n", 'A'+i, r)
	}

	fmt.Println("\n=== Product sharing across equations (Fig. 5 fluxes) ===")
	flux := func(c float64) expr.Node {
		return expr.NewMul(expr.NewConst(c),
			expr.NewVar("K_CD"), expr.NewVar("C"), expr.NewVar("D"))
	}
	rhs2 := []expr.Node{flux(-1), flux(-1), flux(1)}
	fmt.Println("input: dC/dt = -K_CD*C*D ; dD/dt = -K_CD*C*D ; dE/dt = +K_CD*C*D")
	res2 := opt.CSE(rhs2, opt.CSEConfig{Products: true})
	for _, d := range res2.Temps {
		fmt.Printf("  temp[%d] = %s\n", d.ID, d.Body)
	}
	for i, r := range res2.RHS {
		fmt.Printf("  d%c/dt = %s\n", 'C'+i, r)
	}
}
