// Vulcanization workflow: the paper's end-to-end use case. Build the
// sulfur-vulcanization kinetic model, synthesize experimental
// crosslink-concentration curves from the ground-truth rate constants,
// then recover the uncertain constants with the parallel parameter
// estimator — the loop of Fig. 1 that used to take a researcher months.
//
//	go run ./examples/vulcanization
package main

import (
	"fmt"
	"log"
	"math"

	"rms"
	"rms/internal/codegen"
	"rms/internal/dataset"
	"rms/internal/estimator"
	"rms/internal/nlopt"
	"rms/internal/ode"
	"rms/internal/vulcan"
)

func main() {
	const variants = 10
	net, err := vulcan.Network(variants)
	if err != nil {
		log.Fatal(err)
	}
	res, err := rms.CompileNetwork(net, rms.Config{
		Optimize:         rms.FullOptimization(),
		AnalyticJacobian: true, // exact ∂f/∂y for the stiff solver
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiled vulcanization model:", res.Report())

	kTrue, err := vulcan.RateVector(res.System.Rates, vulcan.TrueRates)
	if err != nil {
		log.Fatal(err)
	}
	prop := vulcan.CrosslinkProperty(res.System)

	// Synthesize four "rheometer" files by solving the true model.
	curve := solveCurve(res.Tape, res.System.Y0, kTrue, prop)
	var files []*dataset.File
	for i := 0; i < 4; i++ {
		files = append(files, dataset.Synthesize(curve, dataset.SynthesizeOptions{
			Name:    fmt.Sprintf("formulation%02d", i+1),
			Records: 120 + 60*i,
			T0:      0, T1: 2,
			Noise: 5e-5,
			Seed:  int64(i),
		}))
	}
	fmt.Printf("synthesized %d experimental files\n", len(files))

	// Fit: the chemist knows most constants from quantum chemistry and
	// fits the two uncertain ones (scission and crosslinking) within a
	// decade of their nominal values.
	model := res.Model(prop, ode.Options{RTol: 1e-9, ATol: 1e-12})
	est, err := estimator.New(model, files, estimator.Config{Ranks: 2, LoadBalance: true})
	if err != nil {
		log.Fatal(err)
	}
	n := len(res.System.Rates)
	lower := make([]float64, n)
	upper := make([]float64, n)
	start := make([]float64, n)
	free := map[string]bool{"K_sc": true, "K_cross": true}
	for i, name := range res.System.Rates {
		truth := vulcan.TrueRates[name]
		if free[name] {
			lower[i], upper[i], start[i] = truth/10, truth*10, truth*2.5
		} else {
			lower[i], upper[i], start[i] = truth, truth, truth
		}
	}
	fit, err := est.Estimate(start, lower, upper, nlopt.Options{MaxIter: 40, RelStep: 1e-4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fit: converged=%v iterations=%d rnorm=%.3g\n",
		fit.Converged, fit.Iterations, fit.RNorm)
	fmt.Println("constant   fitted    true      error")
	for i, name := range res.System.Rates {
		if !free[name] {
			continue
		}
		truth := vulcan.TrueRates[name]
		fmt.Printf("%-10s %-9.4f %-9.4f %+.2f%%\n",
			name, fit.X[i], truth, 100*(fit.X[i]-truth)/truth)
	}
	_ = math.Abs
}

func solveCurve(prog *codegen.Program, y0, k []float64,
	prop func([]float64) float64) dataset.PropertyFunc {

	ev := prog.NewEvaluator()
	rhs := func(_ float64, y, dy []float64) { ev.Eval(y, k, dy) }
	solver := ode.NewBDF(rhs, len(y0), ode.Options{RTol: 1e-9, ATol: 1e-12})
	const samples = 256
	y := append([]float64(nil), y0...)
	vs := make([]float64, samples+1)
	vs[0] = prop(y)
	for i := 1; i <= samples; i++ {
		if err := solver.Integrate(2*float64(i-1)/samples, 2*float64(i)/samples, y); err != nil {
			log.Fatal(err)
		}
		vs[i] = prop(y)
	}
	return func(t float64) float64 {
		x := t / 2 * samples
		i := int(x)
		if i < 0 {
			return vs[0]
		}
		if i >= samples {
			return vs[samples]
		}
		f := x - float64(i)
		return vs[i]*(1-f) + vs[i+1]*f
	}
}
