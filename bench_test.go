// Benchmarks regenerating the paper's evaluation artifacts. Each Table 1
// row group and the Table 2 sweep has a corresponding benchmark;
// cmd/rmsbench prints the same data in the paper's layout.
//
//	go test -bench=. -benchmem
package rms

import (
	"fmt"
	"testing"

	"rms/internal/bench"
	"rms/internal/codegen"
	"rms/internal/dataset"
	"rms/internal/eqgen"
	"rms/internal/estimator"
	"rms/internal/linalg"
	"rms/internal/network"
	"rms/internal/nlopt"
	"rms/internal/ode"
	"rms/internal/opt"
	"rms/internal/rdl"
	"rms/internal/vulcan"
)

// buildCase compiles one scaled Table 1 test case at both optimization
// extremes.
func buildCase(b *testing.B, variants int, opts opt.Options) *Result {
	b.Helper()
	net, err := vulcan.Network(variants)
	if err != nil {
		b.Fatal(err)
	}
	res, err := CompileNetwork(net, Config{Optimize: opts})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func evalInputs(prog *codegen.Program) (y, k, dy []float64) {
	y = make([]float64, prog.NumY)
	for i := range y {
		y[i] = 0.5 + 0.001*float64(i%17)
	}
	k = make([]float64, prog.NumK)
	for i := range k {
		k[i] = 0.3 + 0.1*float64(i)
	}
	return y, k, make([]float64, prog.NumY)
}

// BenchmarkTable1RHS measures the execution-time rows of Table 1: the
// cost of one right-hand-side evaluation for each test case, with and
// without the algebraic/CSE optimizations.
func BenchmarkTable1RHS(b *testing.B) {
	for _, c := range vulcan.Cases {
		for _, mode := range []struct {
			name string
			opts opt.Options
		}{{"raw", opt.Options{}}, {"optimized", opt.Full()}} {
			b.Run(fmt.Sprintf("%s/%s", c.Name, mode.name), func(b *testing.B) {
				res := buildCase(b, c.ScaledVariants, mode.opts)
				ev := res.Tape.NewEvaluator()
				y, k, dy := evalInputs(res.Tape)
				m, a := res.Tape.CountOps()
				b.ReportMetric(float64(m+a), "ops/eval")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ev.Eval(y, k, dy)
				}
			})
		}
	}
}

// BenchmarkTable1Optimizer measures the chemical compiler's own cost:
// generating and optimizing each test case.
func BenchmarkTable1Optimizer(b *testing.B) {
	for _, c := range vulcan.Cases[:3] { // the larger cases dominate bench time
		b.Run(c.Name, func(b *testing.B) {
			sys, err := vulcan.System(c.ScaledVariants)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := opt.Optimize(sys, opt.Full()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2Objective measures one parallel objective evaluation at
// each node count of Table 2, with and without dynamic load balancing.
func BenchmarkTable2Objective(b *testing.B) {
	res := buildCase(b, 12, opt.Full())
	k, err := vulcan.RateVector(res.System.Rates, vulcan.TrueRates)
	if err != nil {
		b.Fatal(err)
	}
	prop := vulcan.CrosslinkProperty(res.System)
	files := make([]*dataset.File, 16)
	for i := range files {
		files[i] = dataset.Synthesize(func(t float64) float64 { return t },
			dataset.SynthesizeOptions{
				Name:    fmt.Sprintf("f%02d", i),
				Records: 40 + (i*29)%97,
				T0:      0, T1: 1,
				Seed: int64(i),
			})
	}
	model := res.Model(prop, ode.Options{RTol: 1e-6, ATol: 1e-9})
	for _, ranks := range []int{1, 2, 4, 8, 16} {
		for _, lb := range []bool{false, true} {
			name := fmt.Sprintf("ranks%d/lb=%v", ranks, lb)
			b.Run(name, func(b *testing.B) {
				est, err := estimator.New(model, files,
					estimator.Config{Ranks: ranks, LoadBalance: lb})
				if err != nil {
					b.Fatal(err)
				}
				resid := make([]float64, est.ResidualDim())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := est.Objective(k, resid); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if est.Calls() > 0 {
					b.ReportMetric(est.ModeledSeconds()/float64(est.Calls()), "modeled-s/call")
				}
			})
		}
	}
}

// BenchmarkCSEMatching is the ablation of §3.3's matching strategies: the
// hashed prefix index versus the paper's O(m²n) pairwise scan.
func BenchmarkCSEMatching(b *testing.B) {
	sys, err := vulcan.System(64)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		scan bool
	}{{"hashed", false}, {"paper-scan", true}} {
		b.Run(mode.name, func(b *testing.B) {
			o := opt.Full()
			o.PaperScan = mode.scan
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := opt.Optimize(sys, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistOpt measures the Fig. 6 factoring pass alone.
func BenchmarkDistOpt(b *testing.B) {
	sys, err := vulcan.System(64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, eq := range sys.Equations {
			opt.DistOpt(eq.RHS)
		}
	}
}

// BenchmarkSolvers compares the two IMSL-replacement integrators on the
// vulcanization kinetics.
func BenchmarkSolvers(b *testing.B) {
	res := buildCase(b, 10, opt.Full())
	k, err := vulcan.RateVector(res.System.Rates, vulcan.TrueRates)
	if err != nil {
		b.Fatal(err)
	}
	n := len(res.System.Y0)
	for _, mode := range []string{"adams-gear", "runge-kutta-verner"} {
		b.Run(mode, func(b *testing.B) {
			ev := res.Tape.NewEvaluator()
			rhs := func(_ float64, y, dy []float64) { ev.Eval(y, k, dy) }
			for i := 0; i < b.N; i++ {
				y := append([]float64(nil), res.System.Y0...)
				var err error
				if mode == "adams-gear" {
					err = ode.NewBDF(rhs, n, ode.Options{RTol: 1e-6, ATol: 1e-9}).Integrate(0, 1, y)
				} else {
					err = ode.NewRKV65(rhs, n, ode.Options{RTol: 1e-6, ATol: 1e-9}).Integrate(0, 1, y)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEstimator measures a small end-to-end parameter fit.
func BenchmarkEstimator(b *testing.B) {
	n := network.New()
	n.AddSpecies("A", "", 1)
	n.AddSpecies("B", "", 0)
	n.AddReaction("r", "K_d", []string{"A"}, []string{"B"})
	sys := eqgen.FromNetwork(n)
	z, err := opt.Optimize(sys, opt.Full())
	if err != nil {
		b.Fatal(err)
	}
	prog, err := codegen.Compile(z)
	if err != nil {
		b.Fatal(err)
	}
	file := dataset.Synthesize(func(t float64) float64 { return 1 - 1/(1+t) },
		dataset.SynthesizeOptions{Name: "f", Records: 60, T0: 0, T1: 2})
	model := &estimator.Model{
		Prog: prog, Y0: sys.Y0, Stiff: true,
		Property:   func(y []float64) float64 { return y[1] },
		SolverOpts: ode.Options{RTol: 1e-8, ATol: 1e-10},
	}
	for i := 0; i < b.N; i++ {
		est, err := estimator.New(model, []*dataset.File{file}, estimator.Config{Ranks: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := est.Estimate([]float64{0.3}, []float64{0.01}, []float64{10},
			nlopt.Options{MaxIter: 25, RelStep: 1e-4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrontEnd measures the chemical compiler's front half: RDL
// parsing and reaction-network generation with molecule canonicalization.
func BenchmarkFrontEnd(b *testing.B) {
	src := `
species Crosslink{n=2..8} = "C" + "S"*n + "C" init 0.1
species Dangling{m=1..7}  = "C" + "S"*(m-1) + "[S]" init 0

reaction Scission {
    reactants Crosslink{n}
    forall i = 3 .. n-3
    disconnect 1:S[i] 1:S[i+1]
    rate K_sc(n)
}`
	b.Run("parse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rdl.Parse(src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("generate", func(b *testing.B) {
		prog, err := rdl.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := network.Generate(prog); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestTable1Shape is the headline check of the reproduction: across the
// scaled test cases the optimizer removes the bulk of the arithmetic and
// the compile-capacity pattern of Table 1 holds under the modeled 4.5 GB
// xlc.
func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("table run is not short")
	}
	rows, err := bench.Table1(bench.Table1Config{
		MinEvalTime: 30e6, // 30ms per timing: enough for the shape check
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		ratio := float64(r.OptMuls+r.OptAdds) / float64(r.RawMuls+r.RawAdds)
		if ratio > 0.35 {
			t.Errorf("%s: op ratio %.3f, want < 0.35", r.Case.Name, ratio)
		}
		if r.Speedup < 2 {
			t.Errorf("%s: speedup %.2f, want > 2", r.Case.Name, r.Speedup)
		}
		// Larger cases must not compile raw at high optimization levels.
		if i >= 2 && r.PaperRawLevel > 0 {
			t.Errorf("%s: raw code compiles at -O%d at paper scale; the paper reports failure",
				r.Case.Name, r.PaperRawLevel)
		}
		// The optimized code always compiles (the §3.3 capacity win).
		if r.PaperOptLevel < 0 {
			t.Errorf("%s: optimized code does not compile at paper scale", r.Case.Name)
		}
	}
	// Case 5 raw must fail at every level — Table 1's "compiler error".
	if last := rows[len(rows)-1]; last.PaperRawLevel >= 0 {
		t.Errorf("case5 raw compiles at -O%d; the paper reports failure at all levels",
			last.PaperRawLevel)
	}
}

// TestTable2Shape checks the load-balancing story: with LB the modeled
// speedup is near-linear through 8 ranks and LB never loses to static
// blocks by more than noise at 16 ranks (where both assign one file per
// rank).
func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("table run is not short")
	}
	rows, err := bench.Table2(bench.Table2Config{
		Variants: 10, Records: 150, Calls: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	byRanks := map[int]bench.Table2Row{}
	for _, r := range rows {
		byRanks[r.Ranks] = r
	}
	if r8 := byRanks[8]; r8.SpeedupLB < 5.5 {
		t.Errorf("8-rank LB speedup %.2f, want > 5.5 (paper: 7.99)", r8.SpeedupLB)
	}
	if r16 := byRanks[16]; r16.SpeedupLB < 8 {
		t.Errorf("16-rank LB speedup %.2f, want > 8 (paper: 12.78)", r16.SpeedupLB)
	}
	// LB at 8 ranks should beat or match static within 20% noise.
	if r8 := byRanks[8]; r8.TimeLB > r8.TimeStatic*1.2 {
		t.Errorf("8-rank LB time %.3f worse than static %.3f", r8.TimeLB, r8.TimeStatic)
	}
}

// BenchmarkJacobian compares one stiff solve of the vulcanization model
// with finite-difference versus compiled analytic Jacobians (the
// analytic-Jacobian extension's headline measurement).
func BenchmarkJacobian(b *testing.B) {
	net, err := vulcan.Network(12)
	if err != nil {
		b.Fatal(err)
	}
	res, err := CompileNetwork(net, Config{Optimize: opt.Full(), AnalyticJacobian: true})
	if err != nil {
		b.Fatal(err)
	}
	k, err := vulcan.RateVector(res.System.Rates, vulcan.TrueRates)
	if err != nil {
		b.Fatal(err)
	}
	n := len(res.System.Y0)
	for _, mode := range []string{"finite-difference", "analytic"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ev := res.Tape.NewEvaluator()
				rhs := func(_ float64, y, dy []float64) { ev.Eval(y, k, dy) }
				opts := ode.Options{RTol: 1e-8, ATol: 1e-11}
				if mode == "analytic" {
					je := res.Jacobian.NewEvaluator()
					opts.Jacobian = func(_ float64, y []float64, dst *linalg.Matrix) {
						je.Eval(y, k, dst)
					}
				}
				y := append([]float64(nil), res.System.Y0...)
				if err := ode.NewBDF(rhs, n, opts).Integrate(0, 2, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation times the full optimizer at each pass combination on
// a mid-size case (complementing rmsbench -ablate's op counts with
// compile-time cost).
func BenchmarkAblation(b *testing.B) {
	sys, err := vulcan.System(64)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		o    opt.Options
	}{
		{"simplify", opt.Options{Simplify: true}},
		{"distribute", opt.Options{Simplify: true, Distribute: true}},
		{"paper", opt.Paper()},
		{"full", opt.Full()},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := opt.Optimize(sys, cfg.o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
