# Convenience targets; `make check` is the pre-commit gate.

.PHONY: build test check race bench

build:
	go build ./...

test:
	go test ./...

# check = vet + race tests of the concurrency-heavy packages.
check:
	./scripts/check.sh

race:
	go test -race ./...

bench:
	go test -bench . -benchtime 1s ./internal/bench/ .
