# Convenience targets; `make check` is the pre-commit gate.

.PHONY: build test check race fuzz bench

build:
	go build ./...

test:
	go test ./...

# check = vet + race tests of the concurrency-heavy and numerical-core
# packages + a short parser-fuzz smoke run.
check:
	./scripts/check.sh

race:
	go test -race ./...

fuzz:
	go test -fuzz=FuzzParseRDL -fuzztime=10s ./internal/rdl

bench:
	go test -bench . -benchtime 1s ./internal/bench/ .
