# Convenience targets; `make check` is the pre-commit gate.

.PHONY: build test check race fuzz bench faults verify chaos \
	bench-compare bench-baseline introspect-smoke service-smoke

build:
	go build ./...

test:
	go vet ./...
	go test ./...

# check = vet + race tests of the concurrency-heavy and numerical-core
# packages + a short parser-fuzz smoke run.
check:
	./scripts/check.sh

race:
	go test -race ./...

fuzz:
	go test -fuzz=FuzzParseRDL -fuzztime=10s ./internal/rdl
	go test -fuzz=FuzzParseSMILES -fuzztime=10s ./internal/chem

# The cross-stack conformance matrix (docs/testing.md): every
# optimization layer differentially checked against the reference
# interpreter over seeded random models.
verify:
	go run ./cmd/rmsverify -seed 1 -n 25

# The deterministic fault-injection suite (docs/fault-tolerance.md)
# under the race detector: solver retries, penalty fallbacks, rank
# crash/stall recovery, watchdog diagnosis, optimizer NaN handling.
faults:
	go test -race -run 'Fault|Recover|Watchdog|Inject|Penal|NaN|NonFinite|Flaky|Stall|Crash|Abort' \
		./internal/faults/... ./internal/mpi ./internal/estimator ./internal/nlopt

# The chaos soak (docs/checkpointing.md): every graceful-degradation
# ladder driven by injected faults under the race detector, plus the
# budget/cancellation, checkpoint/resume and SIGINT-interrupt paths of
# the estimator, solvers, optimizer and both CLI front ends.
chaos:
	go test -race -run 'Chaos|Budget|Degrad|Demot|Hang|Timeout|Snapshot|Resume|Checkpoint|Interrupt|Deadline|Cancel' \
		./internal/budget ./internal/estimator \
		./internal/ode ./internal/nlopt ./internal/faults/... \
		./internal/sched ./internal/parallel ./internal/mpi \
		./cmd/rmsrun ./cmd/rmssim
	go test -race ./internal/checkpoint
	go run ./cmd/rmsverify -seed 7 -n 3 -size 10 -stages resume

bench:
	go test -bench . -benchtime 1s ./internal/bench/ .

# Bench regression gate (docs/observability.md): re-run the
# deterministic scheduler-scaling bench and hold it to the committed
# BENCH_baseline.json within cmd/benchcmp's tolerance band. Re-seed the
# baseline with bench-baseline after an intentional performance change.
bench-compare:
	./scripts/bench_compare.sh

bench-baseline:
	./scripts/bench_compare.sh -update

# Live-introspection smoke: rmssim -listen, scrape /metrics, /healthz,
# /debug/vars and /debug/events while the integration runs.
introspect-smoke:
	./scripts/introspect_smoke.sh

# Service smoke (docs/service.md): start rmsd on port 0, drive it with
# rmsctl over HTTP, and hold the served simulate/fit results to the
# standalone rmssim/rmsrun outputs byte for byte.
service-smoke:
	./scripts/service_smoke.sh
