# Convenience targets; `make check` is the pre-commit gate.

.PHONY: build test check race fuzz bench faults verify

build:
	go build ./...

test:
	go vet ./...
	go test ./...

# check = vet + race tests of the concurrency-heavy and numerical-core
# packages + a short parser-fuzz smoke run.
check:
	./scripts/check.sh

race:
	go test -race ./...

fuzz:
	go test -fuzz=FuzzParseRDL -fuzztime=10s ./internal/rdl
	go test -fuzz=FuzzParseSMILES -fuzztime=10s ./internal/chem

# The cross-stack conformance matrix (docs/testing.md): every
# optimization layer differentially checked against the reference
# interpreter over seeded random models.
verify:
	go run ./cmd/rmsverify -seed 1 -n 25

# The deterministic fault-injection suite (docs/fault-tolerance.md)
# under the race detector: solver retries, penalty fallbacks, rank
# crash/stall recovery, watchdog diagnosis, optimizer NaN handling.
faults:
	go test -race -run 'Fault|Recover|Watchdog|Inject|Penal|NaN|NonFinite|Flaky|Stall|Crash|Abort' \
		./internal/faults/... ./internal/mpi ./internal/estimator ./internal/nlopt

bench:
	go test -bench . -benchtime 1s ./internal/bench/ .
