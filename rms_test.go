package rms

import (
	"math"
	"strings"
	"testing"
)

const facadeModel = `
species Bridge = "C[S:1][S:2]C" init 1.0
reaction Scission {
    reactants Bridge
    disconnect 1:1 1:2
    rate K_sc
}
`

func TestCompileFacade(t *testing.T) {
	res, err := Compile(facadeModel, Config{Optimize: FullOptimization()})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.C, "void ode_fcn(") {
		t.Errorf("C output:\n%s", res.C)
	}
	y := res.System.Y0
	k := []float64{2}
	dy := make([]float64, len(y))
	res.Tape.NewEvaluator().Eval(y, k, dy)
	if math.Abs(dy[0]+2) > 1e-12 {
		t.Errorf("dBridge/dt = %v, want -2", dy[0])
	}
}

func TestOptimizationPresets(t *testing.T) {
	full := FullOptimization()
	if !full.Simplify || !full.Distribute || !full.CSE || !full.CSEProducts || !full.Hoist {
		t.Errorf("FullOptimization = %+v", full)
	}
	paper := PaperOptimization()
	if !paper.Simplify || !paper.Distribute || !paper.CSE {
		t.Errorf("PaperOptimization = %+v", paper)
	}
	if paper.CSEProducts || paper.Hoist || paper.ShareFluxes {
		t.Errorf("PaperOptimization includes extensions: %+v", paper)
	}
	none := NoOptimization()
	if none.Simplify || none.Distribute || none.CSE {
		t.Errorf("NoOptimization = %+v", none)
	}
}

func TestCompileNetworkFacade(t *testing.T) {
	// The network path is exercised heavily elsewhere; here only the
	// facade plumbing.
	res, err := Compile(facadeModel, Config{Optimize: NoOptimization()})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := CompileNetwork(res.Network, Config{Optimize: FullOptimization()})
	if err != nil {
		t.Fatal(err)
	}
	if res2.System.NumEquations() != res.System.NumEquations() {
		t.Errorf("equation counts differ: %d vs %d",
			res2.System.NumEquations(), res.System.NumEquations())
	}
}
