// Package rms is the Reaction Modeling Suite: a domain-specific compiler
// and parallel runtime for chemical-kinetics simulation, reproducing the
// system of "An Optimizing Compiler for Parallel Chemistry Simulations"
// (Cao, Goyal, Midkiff, Caruthers — IPPS 2007).
//
// The pipeline takes a reaction description (RDL), expands it into a
// reaction network, generates the system of ordinary differential
// equations governing the species concentrations, removes the enormous
// redundancy of the generated code with the paper's algebraic and
// common-subexpression optimizations, emits C (and an executable tape),
// and fits the kinetic rate constants to experimental data with a stiff
// ODE solver inside a bounded Levenberg–Marquardt optimizer parallelized
// over data files.
//
// Quick start:
//
//	res, err := rms.Compile(src, rms.Config{Optimize: rms.FullOptimization()})
//	...
//	ev := res.Tape.NewEvaluator()
//	ev.Eval(y, k, dy)
//
// See the examples directory for complete programs.
package rms

import (
	"rms/internal/core"
	"rms/internal/network"
	"rms/internal/opt"
)

// Result is a compiled reaction model; see core.Result.
type Result = core.Result

// Config controls compilation; see core.Config.
type Config = core.Config

// OptOptions selects optimizer passes; see opt.Options.
type OptOptions = opt.Options

// Compile compiles RDL source through the full pipeline.
func Compile(src string, cfg Config) (*Result, error) {
	return core.CompileRDL(src, cfg)
}

// CompileNetwork compiles a programmatically built reaction network.
func CompileNetwork(net *network.Network, cfg Config) (*Result, error) {
	return core.CompileNetwork(net, cfg)
}

// FullOptimization returns the production optimizer configuration
// (equation simplification, distributive optimization, CSE with product
// matching, invariant hoisting).
func FullOptimization() OptOptions { return opt.Full() }

// PaperOptimization returns the paper-faithful pass set (§3.1 + Fig. 6 +
// Fig. 7) without this suite's extensions.
func PaperOptimization() OptOptions { return opt.Paper() }

// NoOptimization returns the unoptimized baseline configuration.
func NoOptimization() OptOptions { return OptOptions{} }
