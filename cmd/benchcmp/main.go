// Command benchcmp compares two rmsbench -json documents within a
// relative tolerance band — the regression gate behind `make
// bench-compare`.
//
// Usage:
//
//	benchcmp [-tol 0.10] [-skip regexp] baseline.json current.json
//
// The two documents are walked structurally. Numeric leaves must agree
// within -tol relative tolerance; booleans and strings must match
// exactly. Wall-clock-derived fields are excluded by the -skip pattern
// (default: ModeledSec and the *_ns / *_seconds timing metrics), since
// only the virtual-clock modeled quantities are deterministic across
// hosts — see docs/observability.md.
//
// Arrays whose elements are objects carrying a "name" key (the metrics
// section) are aligned by name, so a PR that *adds* a metric family does
// not shift every later comparison; a family present in the baseline but
// missing from the current run is still a failure. Other arrays align by
// index.
//
// Exit status: 0 when everything is within tolerance, 1 on any
// regression, 2 on usage or I/O errors. With -report the exit status is
// always 0 (CI report-only mode) but the findings still print.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
)

// defaultSkip excludes wall-clock-derived values: per-row ModeledSec
// (scaled by this host's calibrated op rate) and the timing metric
// families. Everything else in the rmsbench document replays a virtual
// clock and is deterministic up to scheduler jitter, which the tolerance
// band absorbs.
const defaultSkip = `(?i)(modeledsec|wall|_ns$|_seconds$|seconds$)`

type cmpConfig struct {
	tol    float64
	skip   *regexp.Regexp
	report bool
}

// finding is one divergence between the documents.
type finding struct {
	path     string
	kind     string // "value", "missing", "extra", "shape"
	base     string
	cur      string
	relDelta float64 // for kind "value" on numbers
}

func (f finding) String() string {
	switch f.kind {
	case "missing":
		return fmt.Sprintf("MISSING %-40s baseline has %s, current does not", f.path, f.base)
	case "extra":
		return fmt.Sprintf("new     %-40s %s (not in baseline; informational)", f.path, f.cur)
	case "shape":
		return fmt.Sprintf("SHAPE   %-40s baseline %s vs current %s", f.path, f.base, f.cur)
	}
	return fmt.Sprintf("DELTA   %-40s %s -> %s (%+.1f%%)", f.path, f.base, f.cur, 100*f.relDelta)
}

// fails reports whether the finding counts against the tolerance gate.
// "extra" entries (new fields or metric families) are informational: a
// growing benchmark surface is not a regression.
func (f finding) fails() bool { return f.kind != "extra" }

func main() {
	var cfg cmpConfig
	var skipPat string
	flag.Float64Var(&cfg.tol, "tol", 0.10, "relative tolerance for numeric fields")
	flag.StringVar(&skipPat, "skip", defaultSkip, "regexp of field/metric names to exclude (wall-clock fields)")
	flag.BoolVar(&cfg.report, "report", false, "report-only: print findings but always exit 0")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-tol f] [-skip regexp] [-report] baseline.json current.json")
		os.Exit(2)
	}
	var err error
	if cfg.skip, err = regexp.Compile(skipPat); err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp: bad -skip pattern:", err)
		os.Exit(2)
	}
	base, err := loadJSON(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	cur, err := loadJSON(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}

	findings := compare(cfg, base, cur, "$")
	failed := 0
	for _, f := range findings {
		fmt.Println(f)
		if f.fails() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Printf("benchcmp: %d field(s) outside the ±%.0f%% band vs %s\n",
			failed, 100*cfg.tol, flag.Arg(0))
		if !cfg.report {
			os.Exit(1)
		}
		return
	}
	fmt.Printf("benchcmp: OK — %s within ±%.0f%% of %s\n", flag.Arg(1), 100*cfg.tol, flag.Arg(0))
}

func loadJSON(path string) (any, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return v, nil
}

// compare walks the two documents and accumulates findings.
func compare(cfg cmpConfig, base, cur any, path string) []finding {
	switch b := base.(type) {
	case map[string]any:
		c, ok := cur.(map[string]any)
		if !ok {
			return []finding{{path: path, kind: "shape", base: typeName(base), cur: typeName(cur)}}
		}
		return compareObjects(cfg, b, c, path)
	case []any:
		c, ok := cur.([]any)
		if !ok {
			return []finding{{path: path, kind: "shape", base: typeName(base), cur: typeName(cur)}}
		}
		return compareArrays(cfg, b, c, path)
	case float64:
		c, ok := cur.(float64)
		if !ok {
			return []finding{{path: path, kind: "shape", base: typeName(base), cur: typeName(cur)}}
		}
		if rel := relDelta(b, c); rel > cfg.tol {
			return []finding{{path: path, kind: "value",
				base: formatNum(b), cur: formatNum(c), relDelta: signedDelta(b, c)}}
		}
		return nil
	default:
		// bool, string, nil: exact.
		if fmt.Sprint(base) != fmt.Sprint(cur) {
			return []finding{{path: path, kind: "value",
				base: fmt.Sprint(base), cur: fmt.Sprint(cur)}}
		}
		return nil
	}
}

func compareObjects(cfg cmpConfig, base, cur map[string]any, path string) []finding {
	var out []finding
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p := path + "." + k
		if cfg.skip.MatchString(k) {
			continue
		}
		cv, ok := cur[k]
		if !ok {
			out = append(out, finding{path: p, kind: "missing", base: summarize(base[k])})
			continue
		}
		out = append(out, compare(cfg, base[k], cv, p)...)
	}
	for k := range cur {
		if _, ok := base[k]; !ok && !cfg.skip.MatchString(k) {
			out = append(out, finding{path: path + "." + k, kind: "extra", cur: summarize(cur[k])})
		}
	}
	return out
}

func compareArrays(cfg cmpConfig, base, cur []any, path string) []finding {
	// The metrics section: objects keyed by "name". Align by name so a
	// new family in the current run doesn't shift every later index.
	if bn, ok := namedMap(base); ok {
		if cn, ok := namedMap(cur); ok {
			var out []finding
			names := make([]string, 0, len(bn))
			for n := range bn {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				p := fmt.Sprintf("%s[%q]", path, n)
				if cfg.skip.MatchString(n) {
					continue
				}
				cv, ok := cn[n]
				if !ok {
					out = append(out, finding{path: p, kind: "missing", base: summarize(bn[n])})
					continue
				}
				out = append(out, compare(cfg, bn[n], cv, p)...)
			}
			for n := range cn {
				if _, ok := bn[n]; !ok && !cfg.skip.MatchString(n) {
					out = append(out, finding{path: fmt.Sprintf("%s[%q]", path, n),
						kind: "extra", cur: summarize(cn[n])})
				}
			}
			return out
		}
	}
	if len(base) != len(cur) {
		return []finding{{path: path, kind: "shape",
			base: fmt.Sprintf("len %d", len(base)), cur: fmt.Sprintf("len %d", len(cur))}}
	}
	var out []finding
	for i := range base {
		out = append(out, compare(cfg, base[i], cur[i], fmt.Sprintf("%s[%d]", path, i))...)
	}
	return out
}

// namedMap converts an array of objects that all carry a unique string
// "name" key into a name-indexed map; ok is false otherwise.
func namedMap(arr []any) (map[string]any, bool) {
	if len(arr) == 0 {
		return nil, false
	}
	m := make(map[string]any, len(arr))
	for _, el := range arr {
		obj, ok := el.(map[string]any)
		if !ok {
			return nil, false
		}
		name, ok := obj["name"].(string)
		if !ok {
			return nil, false
		}
		if _, dup := m[name]; dup {
			return nil, false
		}
		m[name] = obj
	}
	return m, true
}

// relDelta is the symmetric relative difference, with an absolute floor
// so near-zero values don't amplify noise into failures.
func relDelta(a, b float64) float64 {
	if a == b {
		return 0
	}
	scale := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return math.Abs(a-b) / scale
}

// signedDelta is the (current-baseline)/baseline change for reporting.
func signedDelta(a, b float64) float64 {
	scale := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return (b - a) / scale
}

func formatNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%g", v)
}

func typeName(v any) string {
	switch v.(type) {
	case map[string]any:
		return "object"
	case []any:
		return "array"
	case float64:
		return "number"
	case string:
		return "string"
	case bool:
		return "bool"
	case nil:
		return "null"
	}
	return fmt.Sprintf("%T", v)
}

func summarize(v any) string {
	switch t := v.(type) {
	case map[string]any:
		return fmt.Sprintf("object(%d keys)", len(t))
	case []any:
		return fmt.Sprintf("array(%d)", len(t))
	case float64:
		return formatNum(t)
	}
	return fmt.Sprint(v)
}
