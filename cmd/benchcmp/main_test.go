package main

import (
	"encoding/json"
	"regexp"
	"strings"
	"testing"
)

func run(t *testing.T, tol float64, skip, base, cur string) []finding {
	t.Helper()
	cfg := cmpConfig{tol: tol, skip: regexp.MustCompile(skip)}
	var b, c any
	if err := json.Unmarshal([]byte(base), &b); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(cur), &c); err != nil {
		t.Fatal(err)
	}
	return compare(cfg, b, c, "$")
}

func failures(fs []finding) int {
	n := 0
	for _, f := range fs {
		if f.fails() {
			n++
		}
	}
	return n
}

func TestWithinToleranceOK(t *testing.T) {
	fs := run(t, 0.10, defaultSkip,
		`{"skew":[{"Policy":"lpt","ModeledOps":100,"ModeledSec":5.0,"BitIdentical":true}]}`,
		`{"skew":[{"Policy":"lpt","ModeledOps":108,"ModeledSec":9.9,"BitIdentical":true}]}`)
	if failures(fs) != 0 {
		t.Fatalf("in-band drift (and skipped ModeledSec) reported: %v", fs)
	}
}

func TestOutOfBandFails(t *testing.T) {
	fs := run(t, 0.10, defaultSkip,
		`{"skew":[{"ModeledOps":100}]}`,
		`{"skew":[{"ModeledOps":125}]}`)
	if failures(fs) != 1 {
		t.Fatalf("25%% regression not flagged: %v", fs)
	}
	if !strings.Contains(fs[0].String(), "+20.0%") { // symmetric scale: 25/125
		t.Fatalf("finding misreports the delta: %s", fs[0])
	}
}

func TestExactFieldsMustMatch(t *testing.T) {
	fs := run(t, 0.10, defaultSkip,
		`{"skew":[{"BitIdentical":true,"Policy":"sched"}]}`,
		`{"skew":[{"BitIdentical":false,"Policy":"sched"}]}`)
	if failures(fs) != 1 {
		t.Fatalf("boolean flip not flagged exactly once: %v", fs)
	}
}

func TestMetricsAlignByName(t *testing.T) {
	base := `{"metrics":[
		{"name":"ode.steps","kind":"counter","value":1000},
		{"name":"tape.evals","kind":"counter","value":500}]}`
	// Current run adds a family in the middle and drops none: index
	// alignment would garble the comparison; name alignment must not.
	cur := `{"metrics":[
		{"name":"lm.iters","kind":"counter","value":7},
		{"name":"ode.steps","kind":"counter","value":1010},
		{"name":"tape.evals","kind":"counter","value":505}]}`
	fs := run(t, 0.10, defaultSkip, base, cur)
	if failures(fs) != 0 {
		t.Fatalf("name-aligned metrics flagged failures: %v", fs)
	}
	extra := 0
	for _, f := range fs {
		if f.kind == "extra" {
			extra++
		}
	}
	if extra != 1 {
		t.Fatalf("new family not reported as informational: %v", fs)
	}
}

func TestMissingMetricFails(t *testing.T) {
	fs := run(t, 0.10, defaultSkip,
		`{"metrics":[{"name":"ode.steps","kind":"counter","value":1000}]}`,
		`{"metrics":[{"name":"lm.iters","kind":"counter","value":7}]}`)
	if failures(fs) == 0 {
		t.Fatalf("vanished metric family not flagged: %v", fs)
	}
}

func TestSkipPatternExcludesTimingFamilies(t *testing.T) {
	fs := run(t, 0.0, defaultSkip,
		`{"metrics":[{"name":"estimator.file_solve_ns","kind":"histogram","value":1e9}],"x_seconds":4}`,
		`{"metrics":[{"name":"estimator.file_solve_ns","kind":"histogram","value":9e9}],"x_seconds":9}`)
	if len(fs) != 0 {
		t.Fatalf("wall-clock fields not skipped: %v", fs)
	}
}

func TestShapeMismatch(t *testing.T) {
	fs := run(t, 0.10, defaultSkip, `{"skew":[1,2,3]}`, `{"skew":[1,2]}`)
	if failures(fs) != 1 || fs[0].kind != "shape" {
		t.Fatalf("length mismatch not a shape finding: %v", fs)
	}
}

func TestNearZeroAbsoluteFloor(t *testing.T) {
	// 1e-9 vs 3e-9 is a 3x relative change but absolutely negligible —
	// the floor of 1 in relDelta must keep it inside the band.
	fs := run(t, 0.10, defaultSkip, `{"v":1e-9}`, `{"v":3e-9}`)
	if failures(fs) != 0 {
		t.Fatalf("near-zero noise amplified into a failure: %v", fs)
	}
}
