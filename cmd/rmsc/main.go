// Command rmsc is the chemical compiler: it reads a Reaction Description
// Language source file, expands the reaction network, generates the
// system of ODEs, runs the algebraic + CSE optimizer, and emits C code.
//
// Usage:
//
//	rmsc [flags] model.rdl
//
//	-o file        write the generated C here (default stdout)
//	-opt level     none | simplify | paper | full (default full)
//	-rcip file     rate-constant information input
//	-func name     emitted C function name (default ode_fcn)
//	-dump-network  print the reaction network (Fig. 3 form) to stderr
//	-dump-dot      print the network as Graphviz DOT to stderr
//	-dump-odes     print the ODE system (Fig. 5 form) to stderr
//	-report        print the op-count report to stderr
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rms/internal/core"
	"rms/internal/opt"
)

func main() {
	var (
		outPath     = flag.String("o", "", "output C file (default stdout)")
		optLevel    = flag.String("opt", "full", "optimization level: none|simplify|paper|full")
		rcipPath    = flag.String("rcip", "", "rate-constant information file")
		funcName    = flag.String("func", "ode_fcn", "emitted C function name")
		dumpNetwork = flag.Bool("dump-network", false, "print the reaction network to stderr")
		dumpDOT     = flag.Bool("dump-dot", false, "print the reaction network as Graphviz DOT to stderr")
		dumpODEs    = flag.Bool("dump-odes", false, "print the ODE system to stderr")
		report      = flag.Bool("report", false, "print the op-count report to stderr")
	)
	flag.Parse()
	if err := run(*outPath, *optLevel, *rcipPath, *funcName, *dumpNetwork, *dumpDOT, *dumpODEs, *report, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "rmsc:", err)
		os.Exit(1)
	}
}

func run(outPath, optLevel, rcipPath, funcName string,
	dumpNetwork, dumpDOT, dumpODEs, report bool, args []string) error {

	var src []byte
	var err error
	switch len(args) {
	case 0:
		src, err = io.ReadAll(os.Stdin)
	case 1:
		src, err = os.ReadFile(args[0])
	default:
		return fmt.Errorf("expected one source file, got %d", len(args))
	}
	if err != nil {
		return err
	}

	var opts opt.Options
	switch optLevel {
	case "none":
		opts = opt.Options{}
	case "simplify":
		opts = opt.Options{Simplify: true}
	case "paper":
		opts = opt.Paper()
	case "full":
		opts = opt.Full()
	default:
		return fmt.Errorf("unknown -opt level %q", optLevel)
	}

	cfg := core.Config{Optimize: opts, FuncName: funcName}
	if rcipPath != "" {
		b, err := os.ReadFile(rcipPath)
		if err != nil {
			return err
		}
		cfg.RCIP = string(b)
	}

	res, err := core.CompileRDL(string(src), cfg)
	if err != nil {
		return err
	}

	if dumpNetwork {
		fmt.Fprint(os.Stderr, res.Network.Dump())
	}
	if dumpDOT {
		fmt.Fprint(os.Stderr, res.Network.DOT())
	}
	if dumpODEs {
		fmt.Fprint(os.Stderr, res.System.String())
	}
	if report {
		fmt.Fprintln(os.Stderr, res.Report())
	}

	out := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	_, err = io.WriteString(out, res.C)
	return err
}
