package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testModel = `
species A = "[CH3:1][CH3:2]" init 1.0
reaction Decompose {
    reactants A
    disconnect 1:1 1:2
    rate K_d
}
`

func TestRunCompilesToFile(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "model.rdl")
	out := filepath.Join(dir, "model.c")
	if err := os.WriteFile(src, []byte(testModel), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(out, "full", "", "ode_fcn", true, true, true, true, []string{src}); err != nil {
		t.Fatal(err)
	}
	c, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(c), "void ode_fcn(") {
		t.Errorf("output:\n%s", c)
	}
}

func TestRunOptLevels(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "model.rdl")
	if err := os.WriteFile(src, []byte(testModel), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, level := range []string{"none", "simplify", "paper", "full"} {
		out := filepath.Join(dir, level+".c")
		if err := run(out, level, "", "f", false, false, false, false, []string{src}); err != nil {
			t.Errorf("-opt %s: %v", level, err)
		}
	}
	if err := run("", "bogus", "", "f", false, false, false, false, []string{src}); err == nil {
		t.Error("unknown opt level accepted")
	}
}

func TestRunWithRCIP(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "model.rdl")
	rcip := filepath.Join(dir, "rates.rcip")
	out := filepath.Join(dir, "model.c")
	os.WriteFile(src, []byte(testModel), 0o644)
	os.WriteFile(rcip, []byte("K_d = 3"), 0o644)
	if err := run(out, "full", rcip, "f", false, false, false, false, []string{src}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "full", "", "f", false, false, false, false, []string{"/nonexistent.rdl"}); err == nil {
		t.Error("missing source accepted")
	}
	if err := run("", "full", "", "f", false, false, false, false, []string{"a", "b"}); err == nil {
		t.Error("two sources accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.rdl")
	os.WriteFile(bad, []byte("species ="), 0o644)
	if err := run("", "full", "", "f", false, false, false, false, []string{bad}); err == nil {
		t.Error("bad source accepted")
	}
	src := filepath.Join(dir, "ok.rdl")
	os.WriteFile(src, []byte(testModel), 0o644)
	if err := run("", "full", "/nonexistent.rcip", "f", false, false, false, false, []string{src}); err == nil {
		t.Error("missing rcip accepted")
	}
}
