package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const messy = `species   A="C[S:1][S:2]C"   init 1.0
reaction R { reactants A
disconnect 1:1 1:2
rate K_r }`

func TestFormatNormalizes(t *testing.T) {
	out, err := format(messy)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `species A = "C[S:1][S:2]C" init 1`) {
		t.Errorf("output:\n%s", out)
	}
	// Idempotent.
	again, err := format(out)
	if err != nil {
		t.Fatal(err)
	}
	if again != out {
		t.Error("formatting not idempotent")
	}
}

func TestFormatRejectsBadSource(t *testing.T) {
	if _, err := format("species ="); err == nil {
		t.Error("bad source formatted")
	}
}

func TestRunInPlace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.rdl")
	if err := os.WriteFile(path, []byte(messy), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(true, []string{path}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "reaction R {") {
		t.Errorf("rewritten file:\n%s", b)
	}
	if err := run(true, nil); err == nil {
		t.Error("-w without a file accepted")
	}
	if err := run(false, []string{"a", "b"}); err == nil {
		t.Error("two files accepted")
	}
}
