package main

import (
	"fmt"
	"math/rand"
	"testing"

	"rms/internal/conformance"
	"rms/internal/vulcan"
)

// corpus gathers the known-good RDL programs the formatter must handle:
// the documented examples, the generated vulcanization model at several
// sizes, and random structural models from the conformance generator.
func corpus() []string {
	progs := []string{
		// The quickstart model (docs/rdl.md, examples/quickstart).
		`
species Bridge = "C[S:1][S:2]C" init 1.0
species Methyl = "[CH3:3]"      init 0.5
reaction Scission {
    reactants Bridge
    disconnect 1:1 1:2
    rate K_sc
}
reaction Cap {
    reactants Bridge, Methyl
    disconnect 1:1 1:2
    connect    1:1 2:3
    rate K_cap
}`,
		// Ranged species, require/forall, rate families, forbid.
		`
species Crosslink{n=2..8} = "C" + "S"*n + "C" init 0
species Accel            = "CC[S:1][S:2]C"   init 1.0
reaction Scission {
    reactants Crosslink{n}
    require   n >= 6
    forall    i = 3 .. n-3
    disconnect 1:S[i] 1:S[i+1]
    rate K_sc(n)
}
forbid "S"
`,
	}
	for _, v := range []int{8, 12, 26} {
		progs = append(progs, vulcan.RDLSource(v))
	}
	for seed := int64(0); seed < 20; seed++ {
		progs = append(progs, conformance.RandomRDL(rand.New(rand.NewSource(seed))))
	}
	return progs
}

// format(format(x)) == format(x): the formatter is a fixpoint over its
// own output, on the corpus and on random models.
func TestFormatIdempotent(t *testing.T) {
	for i, src := range corpus() {
		t.Run(fmt.Sprintf("prog%d", i), func(t *testing.T) {
			once, err := format(src)
			if err != nil {
				t.Fatalf("corpus program rejected: %v\n%s", err, src)
			}
			twice, err := format(once)
			if err != nil {
				t.Fatalf("formatted output rejected: %v\n%s", err, once)
			}
			if twice != once {
				t.Errorf("format not idempotent:\n--- once\n%s\n--- twice\n%s", once, twice)
			}
		})
	}
}
