// Command rdlfmt formats Reaction Description Language source in the
// canonical style, the way gofmt does for Go: parse, verify, and print
// the canonical rendering.
//
// Usage:
//
//	rdlfmt [-w] [model.rdl]
//
// Without arguments it filters stdin to stdout; with -w it rewrites the
// file in place.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rms/internal/rdl"
)

func main() {
	write := flag.Bool("w", false, "rewrite the file in place")
	flag.Parse()
	if err := run(*write, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "rdlfmt:", err)
		os.Exit(1)
	}
}

func run(write bool, args []string) error {
	switch len(args) {
	case 0:
		if write {
			return fmt.Errorf("-w needs a file argument")
		}
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
		out, err := format(string(src))
		if err != nil {
			return err
		}
		_, err = io.WriteString(os.Stdout, out)
		return err
	case 1:
		src, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		out, err := format(string(src))
		if err != nil {
			return err
		}
		if write {
			return os.WriteFile(args[0], []byte(out), 0o644)
		}
		_, err = io.WriteString(os.Stdout, out)
		return err
	default:
		return fmt.Errorf("expected at most one file, got %d", len(args))
	}
}

func format(src string) (string, error) {
	prog, err := rdl.Parse(src)
	if err != nil {
		return "", err
	}
	return rdl.Format(prog), nil
}
