package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"rms/internal/checkpoint"
	"rms/internal/dataset"
	"rms/internal/telemetry"
)

// synthData writes three small experiment files into a fresh temp dir.
func synthData(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	curve := func(tt float64) float64 { return 1 - 1/(1+tt) }
	for i := 0; i < 3; i++ {
		f := dataset.Synthesize(curve, dataset.SynthesizeOptions{
			Name:    fmt.Sprintf("exp%02d.dat", i+1),
			Records: 40 + 15*i,
			T0:      0, T1: 1,
			Seed: int64(i),
		})
		if err := f.WriteFile(filepath.Join(dir, f.Name)); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// baseOpts is the small, fast configuration the tests run.
func baseOpts(dataDir string) runOpts {
	return runOpts{
		variants: 9, dataDir: dataDir, ranks: 2, lb: true, maxIter: 3, free: 1,
	}
}

func TestRunEstimation(t *testing.T) {
	// A short run must complete without error; recovery quality is covered
	// by the estimator and integration tests.
	if err := run(baseOpts(synthData(t))); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingData(t *testing.T) {
	o := baseOpts(t.TempDir())
	o.ranks, o.lb, o.maxIter = 1, false, 1
	if err := run(o); err == nil {
		t.Error("empty data dir accepted")
	}
}

func TestRunResumeNeedsCheckpoint(t *testing.T) {
	o := baseOpts(synthData(t))
	o.resume = true
	if err := run(o); err == nil {
		t.Error("-resume without -checkpoint accepted")
	}
}

// TestRunCheckpointResume is the end-to-end resume check: a fit
// interrupted by maxIter, resumed from its checkpoint file, must march
// on from the recorded iteration rather than starting over.
func TestRunCheckpointResume(t *testing.T) {
	dir := synthData(t)
	ckpt := filepath.Join(t.TempDir(), "fit.ckpt")

	o := baseOpts(dir)
	o.maxIter = 2
	o.checkpointPath = ckpt
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	st, err := checkpoint.LoadRun(ckpt)
	if err != nil {
		t.Fatalf("no checkpoint after the first run: %v", err)
	}
	if st.Opt.Iter == 0 || st.Est.Calls == 0 {
		t.Fatalf("checkpoint is empty: iter=%d calls=%d", st.Opt.Iter, st.Est.Calls)
	}

	o.maxIter = 4
	o.resume = true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	st2, err := checkpoint.LoadRun(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	// The resumed fit may converge on its first iteration (Iter stays
	// put), but its objective-call counter must continue from the
	// restored state — a restart from scratch would reset it.
	if st2.Opt.Iter < st.Opt.Iter || st2.Est.Calls <= st.Est.Calls {
		t.Errorf("resume did not continue: iter %d→%d, calls %d→%d",
			st.Opt.Iter, st2.Opt.Iter, st.Est.Calls, st2.Est.Calls)
	}
}

// TestRunInterruptLeavesResumableCheckpoint delivers a synthetic SIGINT
// through the injectable interrupt channel: the run must stop reporting
// a budget cancellation (not a crash), leave a loadable checkpoint, and
// a -resume run must then finish the fit.
func TestRunInterruptLeavesResumableCheckpoint(t *testing.T) {
	dir := synthData(t)
	ckpt := filepath.Join(t.TempDir(), "fit.ckpt")

	sig := make(chan os.Signal, 1)
	sig <- os.Interrupt // queued: cancels the budget at the first check
	o := baseOpts(dir)
	o.maxIter = 5
	o.checkpointPath = ckpt
	o.interrupt = sig
	if err := run(o); err != nil {
		t.Fatalf("interrupted run must exit cleanly, got %v", err)
	}
	if _, err := checkpoint.LoadRun(ckpt); err == nil {
		// An immediate interrupt may beat the first checkpoint; either no
		// file (nothing completed) or a loadable one is acceptable. A torn
		// or corrupt file is not — LoadRun distinguishes via ErrCorrupt.
	} else if errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("interrupt left a corrupt checkpoint: %v", err)
	} else if !os.IsNotExist(errors.Unwrap(errors.Unwrap(err))) && !strings.Contains(err.Error(), "no such file") {
		t.Fatalf("unexpected checkpoint state: %v", err)
	}

	// Let one iteration land a checkpoint, interrupt later, then resume.
	o.interrupt = nil
	o.maxIter = 2
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	before, err := checkpoint.LoadRun(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	o.resume = true
	o.maxIter = 4
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	st, err := checkpoint.LoadRun(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if st.Opt.Iter < before.Opt.Iter || st.Est.Calls <= before.Est.Calls {
		t.Errorf("resume after interrupt did not continue: iter %d→%d, calls %d→%d",
			before.Opt.Iter, st.Opt.Iter, before.Est.Calls, st.Est.Calls)
	}
}

// TestRunDeadlineStopsEarly bounds the whole fit with a deadline so
// tight the first objective call cannot finish: the run must stop
// cleanly via the budget, not hang or crash.
func TestRunDeadlineStopsEarly(t *testing.T) {
	o := baseOpts(synthData(t))
	o.maxIter = 50
	o.deadline = time.Millisecond
	if err := run(o); err != nil {
		t.Fatalf("deadline run must exit cleanly, got %v", err)
	}
}

// traceEvent mirrors the Chrome trace-event fields the test inspects.
type traceEvent struct {
	Ph   string  `json:"ph"`
	Name string  `json:"name"`
	TID  int64   `json:"tid"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Args struct {
		Name string `json:"name"`
	} `json:"args"`
}

// TestRunTrace is the acceptance check for the -trace flag: the run must
// produce well-formed Chrome trace JSON with one lane per simulated MPI
// rank, and the named spans on the main lane must attribute at least 95%
// of the traced wall time.
func TestRunTrace(t *testing.T) {
	dir := synthData(t)
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	o := baseOpts(dir)
	o.obs = telemetry.CLI{TracePath: tracePath, Metrics: true}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	// Lane inventory from the thread_name metadata events.
	lanes := map[string]int64{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			lanes[ev.Args.Name] = ev.TID
		}
	}
	for _, want := range []string{"main", "estimator", "rank 0", "rank 1"} {
		if _, ok := lanes[want]; !ok {
			t.Errorf("trace lacks lane %q (lanes: %v)", want, lanes)
		}
	}

	// Coverage: union of main-lane spans over the full traced window.
	mainTID := lanes["main"]
	type iv struct{ s, e float64 }
	var spans []iv
	var last float64
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if end := ev.TS + ev.Dur; end > last {
			last = end
		}
		if ev.TID == mainTID {
			spans = append(spans, iv{ev.TS, ev.TS + ev.Dur})
		}
	}
	if len(spans) == 0 || last <= 0 {
		t.Fatal("no complete events on the main lane")
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].s < spans[j].s })
	var covered, hi float64
	hi = -1
	for _, s := range spans {
		if s.s > hi {
			covered += s.e - s.s
			hi = s.e
		} else if s.e > hi {
			covered += s.e - hi
			hi = s.e
		}
	}
	if cov := covered / last; cov < 0.95 {
		t.Errorf("main-lane spans attribute %.1f%% of traced wall time, want >= 95%%", 100*cov)
	}
}
