package main

import (
	"fmt"
	"path/filepath"
	"testing"

	"rms/internal/dataset"
)

func TestRunEstimation(t *testing.T) {
	dir := t.TempDir()
	// Synthesize three small files with a plausible rising curve.
	curve := func(tt float64) float64 { return 1 - 1/(1+tt) }
	for i := 0; i < 3; i++ {
		f := dataset.Synthesize(curve, dataset.SynthesizeOptions{
			Name:    fmt.Sprintf("exp%02d.dat", i+1),
			Records: 40 + 15*i,
			T0:      0, T1: 1,
			Seed: int64(i),
		})
		if err := f.WriteFile(filepath.Join(dir, f.Name)); err != nil {
			t.Fatal(err)
		}
	}
	// A short run must complete without error; recovery quality is covered
	// by the estimator and integration tests.
	if err := run(9, dir, 2, true, 3, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingData(t *testing.T) {
	if err := run(9, t.TempDir(), 1, false, 1, 1); err == nil {
		t.Error("empty data dir accepted")
	}
}
