package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"rms/internal/dataset"
	"rms/internal/telemetry"
)

// synthData writes three small experiment files into a fresh temp dir.
func synthData(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	curve := func(tt float64) float64 { return 1 - 1/(1+tt) }
	for i := 0; i < 3; i++ {
		f := dataset.Synthesize(curve, dataset.SynthesizeOptions{
			Name:    fmt.Sprintf("exp%02d.dat", i+1),
			Records: 40 + 15*i,
			T0:      0, T1: 1,
			Seed: int64(i),
		})
		if err := f.WriteFile(filepath.Join(dir, f.Name)); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRunEstimation(t *testing.T) {
	dir := synthData(t)
	// A short run must complete without error; recovery quality is covered
	// by the estimator and integration tests.
	if err := run(9, dir, 2, true, 3, 1, telemetry.CLI{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingData(t *testing.T) {
	if err := run(9, t.TempDir(), 1, false, 1, 1, telemetry.CLI{}); err == nil {
		t.Error("empty data dir accepted")
	}
}

// traceEvent mirrors the Chrome trace-event fields the test inspects.
type traceEvent struct {
	Ph   string  `json:"ph"`
	Name string  `json:"name"`
	TID  int64   `json:"tid"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Args struct {
		Name string `json:"name"`
	} `json:"args"`
}

// TestRunTrace is the acceptance check for the -trace flag: the run must
// produce well-formed Chrome trace JSON with one lane per simulated MPI
// rank, and the named spans on the main lane must attribute at least 95%
// of the traced wall time.
func TestRunTrace(t *testing.T) {
	dir := synthData(t)
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	obs := telemetry.CLI{TracePath: tracePath, Metrics: true}
	if err := run(9, dir, 2, true, 3, 1, obs); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	// Lane inventory from the thread_name metadata events.
	lanes := map[string]int64{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			lanes[ev.Args.Name] = ev.TID
		}
	}
	for _, want := range []string{"main", "estimator", "rank 0", "rank 1"} {
		if _, ok := lanes[want]; !ok {
			t.Errorf("trace lacks lane %q (lanes: %v)", want, lanes)
		}
	}

	// Coverage: union of main-lane spans over the full traced window.
	mainTID := lanes["main"]
	type iv struct{ s, e float64 }
	var spans []iv
	var last float64
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if end := ev.TS + ev.Dur; end > last {
			last = end
		}
		if ev.TID == mainTID {
			spans = append(spans, iv{ev.TS, ev.TS + ev.Dur})
		}
	}
	if len(spans) == 0 || last <= 0 {
		t.Fatal("no complete events on the main lane")
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].s < spans[j].s })
	var covered, hi float64
	hi = -1
	for _, s := range spans {
		if s.s > hi {
			covered += s.e - s.s
			hi = s.e
		} else if s.e > hi {
			covered += s.e - hi
			hi = s.e
		}
	}
	if cov := covered / last; cov < 0.95 {
		t.Errorf("main-lane spans attribute %.1f%% of traced wall time, want >= 95%%", 100*cov)
	}
}
