// Command rmsrun runs the parallel parameter estimator: it rebuilds the
// vulcanization model at the requested size, loads the experimental data
// files produced by rmsgen, and fits the kinetic rate constants within
// the chemist's bounds, reporting fitted values against the ground truth
// and the parallel-runtime statistics.
//
// Usage:
//
//	rmsrun -variants 60 -data ./rms-assets -ranks 4 -lb
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"rms/internal/core"
	"rms/internal/dataset"
	"rms/internal/estimator"
	"rms/internal/nlopt"
	"rms/internal/ode"
	"rms/internal/opt"
	"rms/internal/stats"
	"rms/internal/vulcan"
)

func main() {
	var (
		variants = flag.Int("variants", 60, "chain-length variants per family")
		dataDir  = flag.String("data", "rms-assets", "directory of experimental data files")
		ranks    = flag.Int("ranks", 4, "number of simulated MPI ranks")
		lb       = flag.Bool("lb", true, "enable dynamic load balancing")
		maxIter  = flag.Int("maxiter", 30, "Levenberg-Marquardt iteration cap")
		free     = flag.Int("free", 3, "number of rate constants left free to fit (rest pinned to truth)")
	)
	flag.Parse()
	if err := run(*variants, *dataDir, *ranks, *lb, *maxIter, *free); err != nil {
		fmt.Fprintln(os.Stderr, "rmsrun:", err)
		os.Exit(1)
	}
}

func run(variants int, dataDir string, ranks int, lb bool, maxIter, free int) error {
	paths, err := filepath.Glob(filepath.Join(dataDir, "exp*.dat"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no exp*.dat files in %s (run rmsgen first)", dataDir)
	}
	sort.Strings(paths)
	var files []*dataset.File
	for _, p := range paths {
		f, err := dataset.ReadFile(p)
		if err != nil {
			return err
		}
		files = append(files, f)
	}
	fmt.Printf("loaded %d data files (%d..%d records)\n",
		len(files), files[0].NumRecords(), files[len(files)-1].NumRecords())

	net, err := vulcan.Network(variants)
	if err != nil {
		return err
	}
	res, err := core.CompileNetwork(net, core.Config{
		Optimize:         opt.Full(),
		AnalyticJacobian: true,
	})
	if err != nil {
		return err
	}
	fmt.Println(res.Report())

	model := res.Model(vulcan.CrosslinkProperty(res.System),
		ode.Options{RTol: 1e-9, ATol: 1e-12})
	est, err := estimator.New(model, files, estimator.Config{Ranks: ranks, LoadBalance: lb})
	if err != nil {
		return err
	}

	// Bounds: the first `free` constants (sorted order) float within a
	// decade of truth; the rest stay pinned, mirroring a chemist fixing
	// well-known constants and fitting the uncertain ones.
	n := len(res.System.Rates)
	lower := make([]float64, n)
	upper := make([]float64, n)
	start := make([]float64, n)
	for i, name := range res.System.Rates {
		truth := vulcan.TrueRates[name]
		if i < free {
			lower[i], upper[i] = truth/10, truth*10
			start[i] = truth / 3
		} else {
			lower[i], upper[i], start[i] = truth, truth, truth
		}
	}
	fit, err := est.Estimate(start, lower, upper,
		nlopt.Options{MaxIter: maxIter, RelStep: 1e-4, KeepJacobian: true})
	if err != nil {
		return err
	}
	fmt.Printf("converged=%v iterations=%d rnorm=%.3g objective calls=%d\n",
		fit.Converged, fit.Iterations, fit.RNorm, est.Calls())
	fmt.Printf("wall %.2fs, modeled parallel %.2fs over %d ranks (lb=%v)\n",
		est.WallSeconds(), est.ModeledSeconds(), ranks, lb)
	fmt.Println("rate constant   fitted     true")
	for i, name := range res.System.Rates {
		marker := ""
		if i < free {
			marker = "  (fitted)"
		}
		fmt.Printf("%-14s %8.4f %8.4f%s\n", name, fit.X[i], vulcan.TrueRates[name], marker)
	}
	// The Fig. 1 statistical-analysis step.
	good, ivs, err := est.Analyze(fit)
	if err != nil {
		return err
	}
	fmt.Println("goodness of fit:", good)
	fmt.Print(stats.FormatIntervals(res.System.Rates, ivs))
	return nil
}
