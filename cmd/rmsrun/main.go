// Command rmsrun runs the parallel parameter estimator: it rebuilds the
// vulcanization model at the requested size, loads the experimental data
// files produced by rmsgen, and fits the kinetic rate constants within
// the chemist's bounds, reporting fitted values against the ground truth
// and the parallel-runtime statistics.
//
// Usage:
//
//	rmsrun -variants 60 -data ./rms-assets -ranks 4 -lb
//
// Observability:
//
//	-trace out.json    Chrome trace (one lane per MPI rank) + text summary
//	-metrics           print the telemetry registry after the fit
//	-listen addr       serve the live introspection endpoints (/metrics,
//	                   /healthz, /debug/vars, /debug/trace, /progress)
//	-log level         mirror flight-recorder events at this level to stderr
//	-logjson           sink mirrored events as JSON lines instead of text
//	-pprof addr        serve net/http/pprof on addr (e.g. localhost:6060)
//	-cpuprofile f      write a CPU profile to f
//
// Robustness:
//
//	-checkpoint f      write a resumable snapshot at every LM iteration
//	-resume            continue a fit from the -checkpoint file
//	-deadline d        cancel the fit after d (e.g. 10m); with -checkpoint
//	                   the run stops resumable instead of dying mid-fit.
//	                   SIGINT does the same: the current iteration finishes,
//	                   the checkpoint holds the last boundary, and a later
//	                   -resume run continues bit-identically.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"time"

	"rms/internal/budget"
	"rms/internal/checkpoint"
	"rms/internal/dataset"
	"rms/internal/estimator"
	"rms/internal/introspect"
	"rms/internal/nlopt"
	"rms/internal/service"
	"rms/internal/stats"
	"rms/internal/telemetry"
	"rms/internal/vulcan"
)

// runOpts bundles the fit configuration; the checkpoint/resume/deadline
// fields and the injectable interrupt channel are the robustness layer.
type runOpts struct {
	variants, ranks, maxIter, free int
	dataDir                        string
	lb                             bool
	obs                            telemetry.CLI
	// checkpointPath enables iteration-boundary snapshots; resume loads
	// one before fitting. deadline (0 = none) bounds the whole fit.
	checkpointPath string
	resume         bool
	deadline       time.Duration
	// interrupt delivers SIGINT (or, in tests, a synthetic signal); a
	// receipt cancels the fit's budget so the run stops at the next
	// cooperative check with the checkpoint intact.
	interrupt <-chan os.Signal
}

func main() {
	var (
		variants = flag.Int("variants", 60, "chain-length variants per family")
		dataDir  = flag.String("data", "rms-assets", "directory of experimental data files")
		ranks    = flag.Int("ranks", 4, "number of simulated MPI ranks")
		lb       = flag.Bool("lb", true, "enable dynamic load balancing")
		maxIter  = flag.Int("maxiter", 30, "Levenberg-Marquardt iteration cap")
		free     = flag.Int("free", 3, "number of rate constants left free to fit (rest pinned to truth)")
		trace    = flag.String("trace", "", "write a Chrome trace-event file and print the span summary")
		metrics  = flag.Bool("metrics", false, "print the telemetry metrics registry after the fit")
		listen   = flag.String("listen", "", "serve the live introspection endpoints on this address (e.g. localhost:6060 or :0)")
		logLvl   = flag.String("log", "", "mirror flight-recorder events at this level (debug|info|warn|error) to stderr")
		logJSON  = flag.Bool("logjson", false, "sink mirrored events as JSON lines")
		pprof    = flag.String("pprof", "", "serve net/http/pprof on this address")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		ckpt     = flag.String("checkpoint", "", "write a resumable snapshot to this file at every LM iteration boundary")
		resume   = flag.Bool("resume", false, "resume the fit from the -checkpoint file")
		deadline = flag.Duration("deadline", 0, "cancel the fit after this long (0 = no deadline)")
	)
	flag.Parse()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	o := runOpts{
		variants: *variants, ranks: *ranks, maxIter: *maxIter, free: *free,
		dataDir: *dataDir, lb: *lb,
		obs: telemetry.CLI{TracePath: *trace, Metrics: *metrics, PprofAddr: *pprof,
			CPUProfile: *cpuProf, Listen: *listen, LogLevel: *logLvl, LogJSON: *logJSON},
		checkpointPath: *ckpt, resume: *resume, deadline: *deadline,
		interrupt: sig,
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "rmsrun:", err)
		os.Exit(1)
	}
}

func run(o runOpts) error {
	variants, dataDir, ranks := o.variants, o.dataDir, o.ranks
	lb, maxIter, free, obs := o.lb, o.maxIter, o.free, o.obs
	if o.resume && o.checkpointPath == "" {
		return fmt.Errorf("-resume needs -checkpoint")
	}
	ins, finish, err := obs.Setup()
	if err != nil {
		return err
	}
	tracer, reg := ins.Tracer, ins.Registry
	mainLane := tracer.Lane("main") // nil tracer → nil lane, all no-ops
	log := ins.Log.Scope("rmsrun")
	checkpoint.SetLogger(ins.Log.Scope("checkpoint"))

	// The fit budget: a deadline if requested, cancelled early by SIGINT.
	// Both stop the run at the next cooperative check; with -checkpoint
	// the snapshot from the last completed iteration stays resumable.
	bud := budget.New().WithLogger(ins.Log.Scope("budget"))
	if o.deadline > 0 {
		bud = bud.WithDeadline(o.deadline)
	}
	defer bud.Cancel("run finished")
	if obs.Listen != "" {
		srv := &introspect.Server{Program: "rmsrun", Registry: reg,
			Tracer: tracer, Recorder: ins.Recorder, Budget: bud}
		addr, err := srv.Start(obs.Listen)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "rmsrun: introspection on http://%s\n", addr)
	}
	if o.interrupt != nil {
		go func() {
			select {
			case <-o.interrupt:
				fmt.Fprintln(os.Stderr, "rmsrun: interrupt — stopping at the next iteration boundary")
				bud.Cancel("interrupt signal")
			case <-bud.Done():
			}
		}()
	}

	mainLane.Begin("load data")
	paths, err := filepath.Glob(filepath.Join(dataDir, "exp*.dat"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no exp*.dat files in %s (run rmsgen first)", dataDir)
	}
	sort.Strings(paths)
	var files []*dataset.File
	for _, p := range paths {
		f, err := dataset.ReadFile(p)
		if err != nil {
			return err
		}
		files = append(files, f)
	}
	mainLane.End()
	fmt.Printf("loaded %d data files (%d..%d records)\n",
		len(files), files[0].NumRecords(), files[len(files)-1].NumRecords())

	// The shared engine is the single compile + fit code path: the rmsd
	// server runs exactly this with a long-lived cache; here the cache
	// spans one fit.
	eng := service.NewEngine(reg, ins.Log)
	mainLane.Begin("compile")
	cm, _, err := eng.Compile(service.ModelSpec{
		Kind: service.KindVulcan, Variants: variants,
	}, mainLane)
	mainLane.End()
	if err != nil {
		return err
	}
	res := cm.Res
	fmt.Println(res.Report())

	// Bounds: the first `free` constants (sorted order) float within a
	// decade of truth; the rest stay pinned, mirroring a chemist fixing
	// well-known constants and fitting the uncertain ones.
	n := len(res.System.Rates)
	lower := make([]float64, n)
	upper := make([]float64, n)
	start := make([]float64, n)
	for i, name := range res.System.Rates {
		truth := vulcan.TrueRates[name]
		if i < free {
			lower[i], upper[i] = truth/10, truth*10
			start[i] = truth / 3
		} else {
			lower[i], upper[i], start[i] = truth, truth, truth
		}
	}
	req := service.FitRequest{
		Data:     service.FromDataset(files),
		Property: "crosslink", RTol: 1e-9, ATol: 1e-12,
		Ranks: ranks, LoadBalance: lb,
		MaxIter: maxIter, RelStep: 1e-4,
		Start: start, Lower: lower, Upper: upper,
	}
	fo := service.FitOpts{
		Budget: bud, Tracer: tracer, Registry: reg, Log: ins.Log,
		Observer: service.ObserveLM(reg, log),
	}
	if o.checkpointPath != "" {
		fo.Checkpoint = func(cs nlopt.CheckState, est *estimator.Estimator) error {
			return checkpoint.SaveRun(o.checkpointPath, checkpoint.RunState{
				Opt: cs, Est: est.Snapshot(),
			})
		}
	}
	if o.resume {
		st, err := checkpoint.LoadRun(o.checkpointPath)
		if err != nil {
			return err
		}
		fo.Resume = &st
		fmt.Printf("resumed from %s: iteration %d, %d objective calls done\n",
			o.checkpointPath, st.Opt.Iter, st.Est.Calls)
	}
	mainLane.Begin("estimate")
	out, err := service.RunFit(cm, req, fo)
	mainLane.End()
	if err != nil {
		if budget.Exhausted(err) {
			fmt.Printf("fit stopped early: %v\n", err)
			if o.checkpointPath != "" {
				fmt.Printf("checkpoint at %s — continue with -resume\n", o.checkpointPath)
			}
			return finish()
		}
		return err
	}
	fit, est := out.Fit, out.Est
	fmt.Printf("converged=%v iterations=%d rnorm=%.3g objective calls=%d\n",
		fit.Converged, fit.Iterations, fit.RNorm, est.Calls())
	fmt.Printf("wall %.2fs, modeled parallel %.2fs over %d ranks (lb=%v)\n",
		est.WallSeconds(), est.ModeledSeconds(), ranks, lb)
	fmt.Println("rate constant   fitted     true")
	for i, name := range res.System.Rates {
		marker := ""
		if i < free {
			marker = "  (fitted)"
		}
		fmt.Printf("%-14s %8.4f %8.4f%s\n", name, fit.X[i], vulcan.TrueRates[name], marker)
	}
	// The Fig. 1 statistical-analysis step.
	mainLane.Begin("analyze")
	good, ivs, err := est.Analyze(fit)
	mainLane.End()
	if err != nil {
		return err
	}
	fmt.Println("goodness of fit:", good)
	fmt.Print(stats.FormatIntervals(res.System.Rates, ivs))
	return finish()
}
