// Command rmssim compiles a reaction model and integrates it, writing
// the concentration trajectories as CSV — the standalone face of the
// pipeline's ODE-solver stage.
//
// Usage:
//
//	rmssim -rcip rates.rcip -tend 3 -points 200 model.rdl > traj.csv
//
//	-rcip file    rate-constant values (required: every rate needs a value)
//	-tend T       integration horizon (default 1)
//	-points N     output rows (default 100)
//	-solver s     adams-gear | runge-kutta (default adams-gear)
//	-rtol/-atol   tolerances (defaults 1e-8 / 1e-11)
//
// Observability (summaries go to stderr; stdout stays clean CSV):
//
//	-trace f, -metrics, -pprof addr, -cpuprofile f
//	-listen addr  serve the introspection endpoints (/metrics, /healthz,
//	              /debug/vars, /debug/trace, /debug/events, /progress)
//	-log level    echo structured events at or above level to stderr
//	-logjson      JSON log lines instead of text
//
// Robustness:
//
//	-checkpoint f      snapshot {row, y} after every output row
//	-resume            continue from the -checkpoint file (rows already
//	                   emitted are skipped; concatenate the outputs)
//	-deadline d        stop integrating after d; SIGINT stops the same
//	                   way — both leave the checkpoint resumable.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"strings"
	"time"

	"rms/internal/budget"
	"rms/internal/checkpoint"
	"rms/internal/core"
	"rms/internal/introspect"
	"rms/internal/linalg"
	"rms/internal/ode"
	"rms/internal/opt"
	"rms/internal/telemetry"
)

// simOpts bundles the simulation configuration; checkpoint/resume/
// deadline and the injectable interrupt channel are the robustness
// layer.
type simOpts struct {
	rcipPath       string
	tEnd           float64
	points         int
	solver         string
	rtol, atol     float64
	args           []string
	obs            telemetry.CLI
	checkpointPath string
	resume         bool
	deadline       time.Duration
	interrupt      <-chan os.Signal
}

// simKind tags rmssim checkpoints in the envelope.
const simKind = "rms-sim"

// simState is the trajectory checkpoint: the last completed output row
// and the state vector there. The grid parameters travel along so a
// resume under different -points/-tend/-solver is rejected instead of
// silently continuing on a different grid.
type simState struct {
	Points int       `json:"points"`
	TEnd   float64   `json:"tend"`
	Solver string    `json:"solver"`
	Row    int       `json:"row"`
	Y      []float64 `json:"y"`
}

func main() {
	var (
		rcipPath = flag.String("rcip", "", "rate-constant information file")
		tEnd     = flag.Float64("tend", 1, "integration horizon")
		points   = flag.Int("points", 100, "number of output rows")
		solver   = flag.String("solver", "adams-gear", "adams-gear | runge-kutta")
		rtol     = flag.Float64("rtol", 1e-8, "relative tolerance")
		atol     = flag.Float64("atol", 1e-11, "absolute tolerance")
		trace    = flag.String("trace", "", "write a Chrome trace-event file; summary on stderr")
		metrics  = flag.Bool("metrics", false, "print solver metrics on stderr")
		pprof    = flag.String("pprof", "", "serve net/http/pprof on this address")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		ckpt     = flag.String("checkpoint", "", "write a resumable snapshot to this file after every output row")
		resume   = flag.Bool("resume", false, "resume the trajectory from the -checkpoint file")
		deadline = flag.Duration("deadline", 0, "stop integrating after this long (0 = no deadline)")
		listen   = flag.String("listen", "", "serve the introspection debug endpoints on this address (e.g. :6161)")
		logLvl   = flag.String("log", "", "echo structured events at or above this level (debug|info|warn|error) to stderr")
		logJSON  = flag.Bool("logjson", false, "emit log lines as JSON instead of text")
	)
	flag.Parse()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	o := simOpts{
		rcipPath: *rcipPath, tEnd: *tEnd, points: *points, solver: *solver,
		rtol: *rtol, atol: *atol, args: flag.Args(),
		obs: telemetry.CLI{TracePath: *trace, Metrics: *metrics, PprofAddr: *pprof,
			CPUProfile: *cpuProf, Out: os.Stderr,
			Listen: *listen, LogLevel: *logLvl, LogJSON: *logJSON},
		checkpointPath: *ckpt, resume: *resume, deadline: *deadline,
		interrupt: sig,
	}
	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "rmssim:", err)
		os.Exit(1)
	}
}

// observeSolver publishes per-step solver telemetry into reg.
func observeSolver(reg *telemetry.Registry) ode.StepObserver {
	steps := reg.Counter("ode.steps")
	rejected := reg.Counter("ode.rejected_steps")
	newton := reg.Counter("ode.newton_iters")
	factor := reg.Counter("ode.factorizations")
	h := reg.Histogram("ode.step_size", []float64{1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100})
	order := reg.Gauge("ode.order")
	return func(ev ode.StepEvent) {
		if ev.Accepted {
			steps.Inc()
		} else {
			rejected.Inc()
		}
		newton.Add(int64(ev.NewtonIters))
		factor.Add(int64(ev.Factorizations))
		h.Observe(math.Abs(ev.H))
		order.Set(float64(ev.Order))
	}
}

func run(w io.Writer, o simOpts) error {
	rcipPath, tEnd, points := o.rcipPath, o.tEnd, o.points
	solverName, rtol, atol, args, obs := o.solver, o.rtol, o.atol, o.args, o.obs
	if o.resume && o.checkpointPath == "" {
		return fmt.Errorf("-resume needs -checkpoint")
	}
	ins, finish, err := obs.Setup()
	if err != nil {
		return err
	}
	tracer, reg := ins.Tracer, ins.Registry
	lane := tracer.Lane("main")
	log := ins.Log.Scope("rmssim")
	checkpoint.SetLogger(ins.Log.Scope("checkpoint"))

	if len(args) != 1 {
		return fmt.Errorf("expected one model file, got %d", len(args))
	}
	if points < 2 {
		return fmt.Errorf("need at least 2 output points, got %d", points)
	}
	if tEnd <= 0 {
		return fmt.Errorf("tend must be positive, got %g", tEnd)
	}

	bud := budget.New().WithLogger(ins.Log.Scope("budget"))
	if o.deadline > 0 {
		bud = bud.WithDeadline(o.deadline)
	}
	defer bud.Cancel("run finished")
	if obs.Listen != "" {
		dbg := &introspect.Server{Program: "rmssim", Registry: reg,
			Tracer: tracer, Recorder: ins.Recorder, Budget: bud}
		addr, err := dbg.Start(obs.Listen)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "rmssim: introspection on http://%s\n", addr)
		defer dbg.Close()
	}
	if o.interrupt != nil {
		// A signal already queued before the run starts must win
		// deterministically — don't leave it to goroutine scheduling
		// against a short integration.
		select {
		case <-o.interrupt:
			fmt.Fprintln(os.Stderr, "rmssim: interrupt — stopping at the next output row")
			bud.Cancel("interrupt signal")
		default:
		}
		go func() {
			select {
			case <-o.interrupt:
				fmt.Fprintln(os.Stderr, "rmssim: interrupt — stopping at the next output row")
				bud.Cancel("interrupt signal")
			case <-bud.Done():
			}
		}()
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	cfg := core.Config{Optimize: opt.Full(), AnalyticJacobian: solverName == "adams-gear",
		Trace: lane}
	if rcipPath != "" {
		b, err := os.ReadFile(rcipPath)
		if err != nil {
			return err
		}
		cfg.RCIP = string(b)
	}
	lane.Begin("compile")
	res, err := core.CompileRDL(string(src), cfg)
	lane.End()
	if err != nil {
		return err
	}
	// Every rate constant needs a value.
	k := make([]float64, len(res.System.Rates))
	for i, name := range res.System.Rates {
		if res.Rates == nil {
			return fmt.Errorf("no -rcip given: rate constant %s has no value", name)
		}
		v, ok := res.Rates.Values[name]
		if !ok {
			return fmt.Errorf("rate constant %s has no value in the RCIP input", name)
		}
		k[i] = v
	}

	ev := res.Tape.NewEvaluator()
	ev.Observe(reg)
	rhs := func(_ float64, y, dy []float64) { ev.Eval(y, k, dy) }
	n := len(res.System.Y0)
	opts := ode.Options{RTol: rtol, ATol: atol, Budget: bud, Log: ins.Log.Scope("ode")}
	if reg != nil {
		opts.Observer = observeSolver(reg)
	}
	var integrate func(t0, t1 float64, y []float64) error
	switch solverName {
	case "adams-gear":
		if res.Jacobian != nil {
			je := res.Jacobian.NewEvaluator()
			opts.Jacobian = func(_ float64, y []float64, dst *linalg.Matrix) {
				je.Eval(y, k, dst)
			}
		}
		integrate = ode.NewBDF(rhs, n, opts).Integrate
	case "runge-kutta":
		integrate = ode.NewRKV65(rhs, n, opts).Integrate
	default:
		return fmt.Errorf("unknown solver %q", solverName)
	}

	y := append([]float64(nil), res.System.Y0...)
	startRow := 1
	if o.resume {
		var st simState
		if err := checkpoint.Load(o.checkpointPath, simKind, &st); err != nil {
			return err
		}
		if st.Points != points || st.TEnd != tEnd || st.Solver != solverName {
			return fmt.Errorf("checkpoint was taken on a different grid (points=%d tend=%g solver=%s)",
				st.Points, st.TEnd, st.Solver)
		}
		if len(st.Y) != n {
			return fmt.Errorf("checkpoint has %d species, model has %d", len(st.Y), n)
		}
		copy(y, st.Y)
		startRow = st.Row + 1
		// Header and rows up to st.Row were already emitted by the
		// interrupted run; the resumed output concatenates after them.
	} else {
		fmt.Fprintf(w, "t,%s\n", strings.Join(res.System.Species, ","))
		writeRow(w, 0, y)
	}
	lane.Begin("integrate")
	log.Info("start", "integration started", "solver", solverName,
		"points", points, "tend", tEnd, "from_row", startRow)
	for i := startRow; i < points; i++ {
		t0 := tEnd * float64(i-1) / float64(points-1)
		t1 := tEnd * float64(i) / float64(points-1)
		if err := integrate(t0, t1, y); err != nil {
			lane.End()
			if budget.Exhausted(err) {
				fmt.Fprintf(os.Stderr, "rmssim: stopped at row %d/%d: %v\n", i-1, points-1, err)
				if o.checkpointPath != "" {
					fmt.Fprintf(os.Stderr, "rmssim: checkpoint at %s — continue with -resume\n", o.checkpointPath)
				}
				return finish()
			}
			return err
		}
		writeRow(w, t1, y)
		log.Debug("row", "output row", "row", i, "t", t1)
		if o.checkpointPath != "" {
			st := simState{Points: points, TEnd: tEnd, Solver: solverName,
				Row: i, Y: append([]float64(nil), y...)}
			if err := checkpoint.Save(o.checkpointPath, simKind, st); err != nil {
				lane.End()
				return err
			}
		}
	}
	lane.End()
	return finish()
}

func writeRow(w io.Writer, t float64, y []float64) {
	fmt.Fprintf(w, "%.8g", t)
	for _, v := range y {
		fmt.Fprintf(w, ",%.8g", v)
	}
	fmt.Fprintln(w)
}
