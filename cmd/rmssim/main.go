// Command rmssim compiles a reaction model and integrates it, writing
// the concentration trajectories as CSV — the standalone face of the
// pipeline's ODE-solver stage.
//
// Usage:
//
//	rmssim -rcip rates.rcip -tend 3 -points 200 model.rdl > traj.csv
//
//	-rcip file    rate-constant values (required: every rate needs a value)
//	-tend T       integration horizon (default 1)
//	-points N     output rows (default 100)
//	-solver s     adams-gear | runge-kutta (default adams-gear)
//	-rtol/-atol   tolerances (defaults 1e-8 / 1e-11)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rms/internal/core"
	"rms/internal/linalg"
	"rms/internal/ode"
	"rms/internal/opt"
)

func main() {
	var (
		rcipPath = flag.String("rcip", "", "rate-constant information file")
		tEnd     = flag.Float64("tend", 1, "integration horizon")
		points   = flag.Int("points", 100, "number of output rows")
		solver   = flag.String("solver", "adams-gear", "adams-gear | runge-kutta")
		rtol     = flag.Float64("rtol", 1e-8, "relative tolerance")
		atol     = flag.Float64("atol", 1e-11, "absolute tolerance")
	)
	flag.Parse()
	if err := run(os.Stdout, *rcipPath, *tEnd, *points, *solver, *rtol, *atol, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "rmssim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, rcipPath string, tEnd float64, points int,
	solverName string, rtol, atol float64, args []string) error {

	if len(args) != 1 {
		return fmt.Errorf("expected one model file, got %d", len(args))
	}
	if points < 2 {
		return fmt.Errorf("need at least 2 output points, got %d", points)
	}
	if tEnd <= 0 {
		return fmt.Errorf("tend must be positive, got %g", tEnd)
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	cfg := core.Config{Optimize: opt.Full(), AnalyticJacobian: solverName == "adams-gear"}
	if rcipPath != "" {
		b, err := os.ReadFile(rcipPath)
		if err != nil {
			return err
		}
		cfg.RCIP = string(b)
	}
	res, err := core.CompileRDL(string(src), cfg)
	if err != nil {
		return err
	}
	// Every rate constant needs a value.
	k := make([]float64, len(res.System.Rates))
	for i, name := range res.System.Rates {
		if res.Rates == nil {
			return fmt.Errorf("no -rcip given: rate constant %s has no value", name)
		}
		v, ok := res.Rates.Values[name]
		if !ok {
			return fmt.Errorf("rate constant %s has no value in the RCIP input", name)
		}
		k[i] = v
	}

	ev := res.Tape.NewEvaluator()
	rhs := func(_ float64, y, dy []float64) { ev.Eval(y, k, dy) }
	n := len(res.System.Y0)
	opts := ode.Options{RTol: rtol, ATol: atol}
	var integrate func(t0, t1 float64, y []float64) error
	switch solverName {
	case "adams-gear":
		if res.Jacobian != nil {
			je := res.Jacobian.NewEvaluator()
			opts.Jacobian = func(_ float64, y []float64, dst *linalg.Matrix) {
				je.Eval(y, k, dst)
			}
		}
		integrate = ode.NewBDF(rhs, n, opts).Integrate
	case "runge-kutta":
		integrate = ode.NewRKV65(rhs, n, opts).Integrate
	default:
		return fmt.Errorf("unknown solver %q", solverName)
	}

	fmt.Fprintf(w, "t,%s\n", strings.Join(res.System.Species, ","))
	y := append([]float64(nil), res.System.Y0...)
	writeRow(w, 0, y)
	for i := 1; i < points; i++ {
		t0 := tEnd * float64(i-1) / float64(points-1)
		t1 := tEnd * float64(i) / float64(points-1)
		if err := integrate(t0, t1, y); err != nil {
			return err
		}
		writeRow(w, t1, y)
	}
	return nil
}

func writeRow(w io.Writer, t float64, y []float64) {
	fmt.Fprintf(w, "%.8g", t)
	for _, v := range y {
		fmt.Fprintf(w, ",%.8g", v)
	}
	fmt.Fprintln(w)
}
