// Command rmssim compiles a reaction model and integrates it, writing
// the concentration trajectories as CSV — the standalone face of the
// pipeline's ODE-solver stage.
//
// Usage:
//
//	rmssim -rcip rates.rcip -tend 3 -points 200 model.rdl > traj.csv
//
//	-rcip file    rate-constant values (required: every rate needs a value)
//	-tend T       integration horizon (default 1)
//	-points N     output rows (default 100)
//	-solver s     adams-gear | runge-kutta (default adams-gear)
//	-rtol/-atol   tolerances (defaults 1e-8 / 1e-11)
//
// Observability (summaries go to stderr; stdout stays clean CSV):
//
//	-trace f, -metrics, -pprof addr, -cpuprofile f
//	-listen addr  serve the introspection endpoints (/metrics, /healthz,
//	              /debug/vars, /debug/trace, /debug/events, /progress)
//	-log level    echo structured events at or above level to stderr
//	-logjson      JSON log lines instead of text
//
// Robustness:
//
//	-checkpoint f      snapshot {row, y} after every output row
//	-resume            continue from the -checkpoint file (rows already
//	                   emitted are skipped; concatenate the outputs)
//	-deadline d        stop integrating after d; SIGINT stops the same
//	                   way — both leave the checkpoint resumable.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"rms/internal/budget"
	"rms/internal/checkpoint"
	"rms/internal/introspect"
	"rms/internal/service"
	"rms/internal/telemetry"
)

// simOpts bundles the simulation configuration; checkpoint/resume/
// deadline and the injectable interrupt channel are the robustness
// layer.
type simOpts struct {
	rcipPath       string
	tEnd           float64
	points         int
	solver         string
	rtol, atol     float64
	args           []string
	obs            telemetry.CLI
	checkpointPath string
	resume         bool
	deadline       time.Duration
	interrupt      <-chan os.Signal
}

// simKind tags rmssim checkpoints in the envelope.
const simKind = "rms-sim"

// simState is the trajectory checkpoint: the last completed output row
// and the state vector there. The grid parameters travel along so a
// resume under different -points/-tend/-solver is rejected instead of
// silently continuing on a different grid.
type simState struct {
	Points int       `json:"points"`
	TEnd   float64   `json:"tend"`
	Solver string    `json:"solver"`
	Row    int       `json:"row"`
	Y      []float64 `json:"y"`
}

func main() {
	var (
		rcipPath = flag.String("rcip", "", "rate-constant information file")
		tEnd     = flag.Float64("tend", 1, "integration horizon")
		points   = flag.Int("points", 100, "number of output rows")
		solver   = flag.String("solver", "adams-gear", "adams-gear | runge-kutta")
		rtol     = flag.Float64("rtol", 1e-8, "relative tolerance")
		atol     = flag.Float64("atol", 1e-11, "absolute tolerance")
		trace    = flag.String("trace", "", "write a Chrome trace-event file; summary on stderr")
		metrics  = flag.Bool("metrics", false, "print solver metrics on stderr")
		pprof    = flag.String("pprof", "", "serve net/http/pprof on this address")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		ckpt     = flag.String("checkpoint", "", "write a resumable snapshot to this file after every output row")
		resume   = flag.Bool("resume", false, "resume the trajectory from the -checkpoint file")
		deadline = flag.Duration("deadline", 0, "stop integrating after this long (0 = no deadline)")
		listen   = flag.String("listen", "", "serve the introspection debug endpoints on this address (e.g. :6161)")
		logLvl   = flag.String("log", "", "echo structured events at or above this level (debug|info|warn|error) to stderr")
		logJSON  = flag.Bool("logjson", false, "emit log lines as JSON instead of text")
	)
	flag.Parse()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	o := simOpts{
		rcipPath: *rcipPath, tEnd: *tEnd, points: *points, solver: *solver,
		rtol: *rtol, atol: *atol, args: flag.Args(),
		obs: telemetry.CLI{TracePath: *trace, Metrics: *metrics, PprofAddr: *pprof,
			CPUProfile: *cpuProf, Out: os.Stderr,
			Listen: *listen, LogLevel: *logLvl, LogJSON: *logJSON},
		checkpointPath: *ckpt, resume: *resume, deadline: *deadline,
		interrupt: sig,
	}
	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "rmssim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, o simOpts) error {
	rcipPath, tEnd, points := o.rcipPath, o.tEnd, o.points
	solverName, rtol, atol, args, obs := o.solver, o.rtol, o.atol, o.args, o.obs
	if o.resume && o.checkpointPath == "" {
		return fmt.Errorf("-resume needs -checkpoint")
	}
	ins, finish, err := obs.Setup()
	if err != nil {
		return err
	}
	tracer, reg := ins.Tracer, ins.Registry
	lane := tracer.Lane("main")
	log := ins.Log.Scope("rmssim")
	checkpoint.SetLogger(ins.Log.Scope("checkpoint"))

	if len(args) != 1 {
		return fmt.Errorf("expected one model file, got %d", len(args))
	}
	if points < 2 {
		return fmt.Errorf("need at least 2 output points, got %d", points)
	}
	if tEnd <= 0 {
		return fmt.Errorf("tend must be positive, got %g", tEnd)
	}

	bud := budget.New().WithLogger(ins.Log.Scope("budget"))
	if o.deadline > 0 {
		bud = bud.WithDeadline(o.deadline)
	}
	defer bud.Cancel("run finished")
	if obs.Listen != "" {
		dbg := &introspect.Server{Program: "rmssim", Registry: reg,
			Tracer: tracer, Recorder: ins.Recorder, Budget: bud}
		addr, err := dbg.Start(obs.Listen)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "rmssim: introspection on http://%s\n", addr)
		defer dbg.Close()
	}
	if o.interrupt != nil {
		// A signal already queued before the run starts must win
		// deterministically — don't leave it to goroutine scheduling
		// against a short integration.
		select {
		case <-o.interrupt:
			fmt.Fprintln(os.Stderr, "rmssim: interrupt — stopping at the next output row")
			bud.Cancel("interrupt signal")
		default:
		}
		go func() {
			select {
			case <-o.interrupt:
				fmt.Fprintln(os.Stderr, "rmssim: interrupt — stopping at the next output row")
				bud.Cancel("interrupt signal")
			case <-bud.Done():
			}
		}()
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	spec := service.ModelSpec{Kind: service.KindRDL, Source: string(src)}
	if rcipPath != "" {
		b, err := os.ReadFile(rcipPath)
		if err != nil {
			return err
		}
		spec.RCIP = string(b)
	}
	// The shared engine is the single compile + simulate code path: the
	// rmsd server runs exactly this with a long-lived cache; here the
	// cache spans one trajectory.
	eng := service.NewEngine(reg, ins.Log)
	lane.Begin("compile")
	cm, _, err := eng.Compile(spec, lane)
	lane.End()
	if err != nil {
		return err
	}

	req := service.SimulateRequest{
		TEnd: tEnd, Points: points, Solver: solverName, RTol: rtol, ATol: atol,
	}
	if o.resume {
		var st simState
		if err := checkpoint.Load(o.checkpointPath, simKind, &st); err != nil {
			return err
		}
		if st.Points != points || st.TEnd != tEnd || st.Solver != solverName {
			return fmt.Errorf("checkpoint was taken on a different grid (points=%d tend=%g solver=%s)",
				st.Points, st.TEnd, st.Solver)
		}
		if len(st.Y) != len(cm.Res.System.Y0) {
			return fmt.Errorf("checkpoint has %d species, model has %d", len(st.Y), len(cm.Res.System.Y0))
		}
		req.StartRow, req.Y = st.Row, st.Y
		// Header and rows up to st.Row were already emitted by the
		// interrupted run; the resumed output concatenates after them.
	} else {
		fmt.Fprintf(w, "t,%s\n", strings.Join(cm.Res.System.Species, ","))
	}
	lane.Begin("integrate")
	log.Info("start", "integration started", "solver", solverName,
		"points", points, "tend", tEnd, "from_row", req.StartRow+1)
	res, err := service.RunSimulate(cm, req, service.SimOpts{
		Budget: bud, Registry: reg, Log: ins.Log.Scope("ode"),
		Row: func(row int, t float64, y []float64) error {
			writeRow(w, t, y)
			if row > 0 {
				log.Debug("row", "output row", "row", row, "t", t)
			}
			if o.checkpointPath != "" && row > 0 {
				st := simState{Points: points, TEnd: tEnd, Solver: solverName,
					Row: row, Y: append([]float64(nil), y...)}
				return checkpoint.Save(o.checkpointPath, simKind, st)
			}
			return nil
		},
	})
	lane.End()
	if err != nil {
		if budget.Exhausted(err) && res != nil {
			fmt.Fprintf(os.Stderr, "rmssim: stopped at row %d/%d: %v\n", res.Row, points-1, err)
			if o.checkpointPath != "" {
				fmt.Fprintf(os.Stderr, "rmssim: checkpoint at %s — continue with -resume\n", o.checkpointPath)
			}
			return finish()
		}
		return err
	}
	return finish()
}

func writeRow(w io.Writer, t float64, y []float64) {
	fmt.Fprintf(w, "%.8g", t)
	for _, v := range y {
		fmt.Fprintf(w, ",%.8g", v)
	}
	fmt.Fprintln(w)
}
