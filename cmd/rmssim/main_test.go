package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"rms/internal/checkpoint"
	"rms/internal/telemetry"
)

const simModel = `
species A = "[CH3:1][CH3:2]" init 1.0
reaction Decompose {
    reactants A
    disconnect 1:1 1:2
    rate K_d
}
`

func writeInputs(t *testing.T) (model, rates string) {
	t.Helper()
	dir := t.TempDir()
	model = filepath.Join(dir, "m.rdl")
	rates = filepath.Join(dir, "r.rcip")
	if err := os.WriteFile(model, []byte(simModel), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(rates, []byte("K_d = 2"), 0o644); err != nil {
		t.Fatal(err)
	}
	return model, rates
}

// simBase is the small configuration the tests run.
func simBase(model, rates string) simOpts {
	return simOpts{rcipPath: rates, tEnd: 1, points: 11, solver: "adams-gear",
		rtol: 1e-9, atol: 1e-12, args: []string{model}}
}

func TestSimulateCSV(t *testing.T) {
	model, rates := writeInputs(t)
	for _, solver := range []string{"adams-gear", "runge-kutta"} {
		var buf bytes.Buffer
		o := simBase(model, rates)
		o.solver = solver
		if err := run(&buf, o); err != nil {
			t.Fatalf("%s: %v", solver, err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if len(lines) != 12 {
			t.Fatalf("%s: %d lines", solver, len(lines))
		}
		if !strings.HasPrefix(lines[0], "t,A,") {
			t.Errorf("header = %q", lines[0])
		}
		// Final [A] = e^{-2·1}.
		last := strings.Split(lines[len(lines)-1], ",")
		a, err := strconv.ParseFloat(last[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-math.Exp(-2)) > 1e-6 {
			t.Errorf("%s: [A](1) = %v, want %v", solver, a, math.Exp(-2))
		}
	}
}

// TestSimulateObserved runs with -trace and -metrics active: the CSV on
// stdout must be untouched, the trace file must be valid JSON, and the
// stderr-bound summary must report solver metrics.
func TestSimulateObserved(t *testing.T) {
	model, rates := writeInputs(t)
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	var csv, obsOut bytes.Buffer
	o := simBase(model, rates)
	o.obs = telemetry.CLI{TracePath: tracePath, Metrics: true, Out: &obsOut}
	if err := run(&csv, o); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimSpace(csv.String()), "\n"); len(lines) != 12 {
		t.Errorf("CSV rows = %d, want 12", len(lines))
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	for _, want := range []string{"== span summary", "compile", "integrate", "ode.steps", "tape.evals"} {
		if !strings.Contains(obsOut.String(), want) {
			t.Errorf("observability output lacks %q:\n%s", want, obsOut.String())
		}
	}
}

func TestSimulateErrors(t *testing.T) {
	model, rates := writeInputs(t)
	var buf bytes.Buffer
	try := func(mut func(*simOpts)) error {
		o := simBase(model, rates)
		o.points = 10
		o.rtol, o.atol = 1e-8, 1e-11
		mut(&o)
		return run(&buf, o)
	}
	if err := try(func(o *simOpts) { o.rcipPath = "" }); err == nil {
		t.Error("missing rcip accepted")
	}
	if err := try(func(o *simOpts) { o.points = 1 }); err == nil {
		t.Error("points < 2 accepted")
	}
	if err := try(func(o *simOpts) { o.tEnd = -1 }); err == nil {
		t.Error("negative tend accepted")
	}
	if err := try(func(o *simOpts) { o.solver = "euler" }); err == nil {
		t.Error("unknown solver accepted")
	}
	if err := try(func(o *simOpts) { o.args = nil }); err == nil {
		t.Error("no model accepted")
	}
	if err := try(func(o *simOpts) { o.resume = true }); err == nil {
		t.Error("-resume without -checkpoint accepted")
	}
}

// TestSimulateCheckpointResume splits a trajectory across two runs: rows
// from an interrupted run plus rows from a -resume run must equal the
// uninterrupted run's CSV exactly.
func TestSimulateCheckpointResume(t *testing.T) {
	model, rates := writeInputs(t)
	ckpt := filepath.Join(t.TempDir(), "sim.ckpt")

	var whole bytes.Buffer
	if err := run(&whole, simBase(model, rates)); err != nil {
		t.Fatal(err)
	}

	// First half: interrupt (synthetic SIGINT already queued) after the
	// budget check between rows — to make the split deterministic, run
	// uninterrupted but with checkpointing, then truncate: resume from an
	// earlier checkpoint written mid-run is covered by rewriting the
	// checkpoint to an interior row below.
	var first bytes.Buffer
	o := simBase(model, rates)
	o.checkpointPath = ckpt
	if err := run(&first, o); err != nil {
		t.Fatal(err)
	}
	var st simState
	if err := checkpoint.Load(ckpt, simKind, &st); err != nil {
		t.Fatal(err)
	}
	if st.Row != 10 {
		t.Fatalf("final checkpoint row = %d, want 10", st.Row)
	}

	// Rewind the checkpoint to row 5 (values from the uninterrupted CSV
	// prefix are already in st's history — recompute by re-running the
	// first 5 rows' integration through resume machinery): emulate an
	// interrupted run by re-running with points so the loop stops at 5.
	lines := strings.Split(strings.TrimSpace(first.String()), "\n")
	if len(lines) != 12 {
		t.Fatalf("first run rows = %d, want 12", len(lines))
	}
	mid := strings.Split(lines[6], ",") // header + rows 0..5 → row 5
	yMid := make([]float64, len(mid)-1)
	for i, s := range mid[1:] {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatal(err)
		}
		yMid[i] = v
	}
	if err := checkpoint.Save(ckpt, simKind, simState{
		Points: 11, TEnd: 1, Solver: "adams-gear", Row: 5, Y: yMid,
	}); err != nil {
		t.Fatal(err)
	}

	var rest bytes.Buffer
	o2 := simBase(model, rates)
	o2.checkpointPath = ckpt
	o2.resume = true
	if err := run(&rest, o2); err != nil {
		t.Fatal(err)
	}
	restLines := strings.Split(strings.TrimSpace(rest.String()), "\n")
	if len(restLines) != 5 {
		t.Fatalf("resumed rows = %d, want 5 (rows 6..10)", len(restLines))
	}
	// The resumed rows must continue the trajectory: same t grid, and the
	// final concentration must agree with the uninterrupted run to
	// integrator tolerance (the CSV prints 8 significant digits).
	wholeLines := strings.Split(strings.TrimSpace(whole.String()), "\n")
	for i, rl := range restLines {
		wt := strings.Split(wholeLines[7+i], ",")[0]
		rt := strings.Split(rl, ",")[0]
		if wt != rt {
			t.Errorf("resumed row %d t = %s, want %s", 6+i, rt, wt)
		}
	}
	wantLast := strings.Split(wholeLines[len(wholeLines)-1], ",")[1]
	gotLast := strings.Split(restLines[len(restLines)-1], ",")[1]
	wa, _ := strconv.ParseFloat(wantLast, 64)
	ga, _ := strconv.ParseFloat(gotLast, 64)
	if math.Abs(wa-ga) > 1e-7 {
		t.Errorf("resumed final [A] = %v, want %v", ga, wa)
	}

	// Grid-mismatch rejection.
	o3 := simBase(model, rates)
	o3.points = 21
	o3.checkpointPath = ckpt
	o3.resume = true
	if err := run(&bytes.Buffer{}, o3); err == nil {
		t.Error("resume onto a different grid accepted")
	}
}

// TestSimulateInterruptStopsCleanly delivers a queued synthetic SIGINT:
// the run must stop between rows without an error exit and leave a
// loadable checkpoint whose row count matches the emitted CSV.
func TestSimulateInterruptStopsCleanly(t *testing.T) {
	model, rates := writeInputs(t)
	ckpt := filepath.Join(t.TempDir(), "sim.ckpt")
	sig := make(chan os.Signal, 1)
	sig <- os.Interrupt
	var buf bytes.Buffer
	o := simBase(model, rates)
	o.checkpointPath = ckpt
	o.interrupt = sig
	if err := run(&buf, o); err != nil {
		t.Fatalf("interrupted run must exit cleanly, got %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header plus at least the t=0 row; the interrupt lands before the
	// integrator finishes the remaining rows.
	if len(lines) < 2 || len(lines) >= 12 {
		t.Errorf("interrupted run emitted %d lines, want 2..11", len(lines))
	}
	if len(lines) > 2 {
		var st simState
		if err := checkpoint.Load(ckpt, simKind, &st); err != nil {
			t.Fatal(err)
		}
		if st.Row != len(lines)-2 {
			t.Errorf("checkpoint row = %d, CSV has %d data rows past t=0", st.Row, len(lines)-2)
		}
	}
}
