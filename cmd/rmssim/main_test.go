package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

const simModel = `
species A = "[CH3:1][CH3:2]" init 1.0
reaction Decompose {
    reactants A
    disconnect 1:1 1:2
    rate K_d
}
`

func writeInputs(t *testing.T) (model, rates string) {
	t.Helper()
	dir := t.TempDir()
	model = filepath.Join(dir, "m.rdl")
	rates = filepath.Join(dir, "r.rcip")
	if err := os.WriteFile(model, []byte(simModel), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(rates, []byte("K_d = 2"), 0o644); err != nil {
		t.Fatal(err)
	}
	return model, rates
}

func TestSimulateCSV(t *testing.T) {
	model, rates := writeInputs(t)
	for _, solver := range []string{"adams-gear", "runge-kutta"} {
		var buf bytes.Buffer
		if err := run(&buf, rates, 1, 11, solver, 1e-9, 1e-12, []string{model}); err != nil {
			t.Fatalf("%s: %v", solver, err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if len(lines) != 12 {
			t.Fatalf("%s: %d lines", solver, len(lines))
		}
		if !strings.HasPrefix(lines[0], "t,A,") {
			t.Errorf("header = %q", lines[0])
		}
		// Final [A] = e^{-2·1}.
		last := strings.Split(lines[len(lines)-1], ",")
		a, err := strconv.ParseFloat(last[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-math.Exp(-2)) > 1e-6 {
			t.Errorf("%s: [A](1) = %v, want %v", solver, a, math.Exp(-2))
		}
	}
}

func TestSimulateErrors(t *testing.T) {
	model, rates := writeInputs(t)
	var buf bytes.Buffer
	if err := run(&buf, "", 1, 10, "adams-gear", 1e-8, 1e-11, []string{model}); err == nil {
		t.Error("missing rcip accepted")
	}
	if err := run(&buf, rates, 1, 1, "adams-gear", 1e-8, 1e-11, []string{model}); err == nil {
		t.Error("points < 2 accepted")
	}
	if err := run(&buf, rates, -1, 10, "adams-gear", 1e-8, 1e-11, []string{model}); err == nil {
		t.Error("negative tend accepted")
	}
	if err := run(&buf, rates, 1, 10, "euler", 1e-8, 1e-11, []string{model}); err == nil {
		t.Error("unknown solver accepted")
	}
	if err := run(&buf, rates, 1, 10, "adams-gear", 1e-8, 1e-11, nil); err == nil {
		t.Error("no model accepted")
	}
}
