package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"rms/internal/telemetry"
)

const simModel = `
species A = "[CH3:1][CH3:2]" init 1.0
reaction Decompose {
    reactants A
    disconnect 1:1 1:2
    rate K_d
}
`

func writeInputs(t *testing.T) (model, rates string) {
	t.Helper()
	dir := t.TempDir()
	model = filepath.Join(dir, "m.rdl")
	rates = filepath.Join(dir, "r.rcip")
	if err := os.WriteFile(model, []byte(simModel), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(rates, []byte("K_d = 2"), 0o644); err != nil {
		t.Fatal(err)
	}
	return model, rates
}

func TestSimulateCSV(t *testing.T) {
	model, rates := writeInputs(t)
	for _, solver := range []string{"adams-gear", "runge-kutta"} {
		var buf bytes.Buffer
		if err := run(&buf, rates, 1, 11, solver, 1e-9, 1e-12, []string{model}, telemetry.CLI{}); err != nil {
			t.Fatalf("%s: %v", solver, err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if len(lines) != 12 {
			t.Fatalf("%s: %d lines", solver, len(lines))
		}
		if !strings.HasPrefix(lines[0], "t,A,") {
			t.Errorf("header = %q", lines[0])
		}
		// Final [A] = e^{-2·1}.
		last := strings.Split(lines[len(lines)-1], ",")
		a, err := strconv.ParseFloat(last[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-math.Exp(-2)) > 1e-6 {
			t.Errorf("%s: [A](1) = %v, want %v", solver, a, math.Exp(-2))
		}
	}
}

// TestSimulateObserved runs with -trace and -metrics active: the CSV on
// stdout must be untouched, the trace file must be valid JSON, and the
// stderr-bound summary must report solver metrics.
func TestSimulateObserved(t *testing.T) {
	model, rates := writeInputs(t)
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	var csv, obsOut bytes.Buffer
	obs := telemetry.CLI{TracePath: tracePath, Metrics: true, Out: &obsOut}
	if err := run(&csv, rates, 1, 11, "adams-gear", 1e-9, 1e-12, []string{model}, obs); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimSpace(csv.String()), "\n"); len(lines) != 12 {
		t.Errorf("CSV rows = %d, want 12", len(lines))
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	for _, want := range []string{"== span summary", "compile", "integrate", "ode.steps", "tape.evals"} {
		if !strings.Contains(obsOut.String(), want) {
			t.Errorf("observability output lacks %q:\n%s", want, obsOut.String())
		}
	}
}

func TestSimulateErrors(t *testing.T) {
	model, rates := writeInputs(t)
	var buf bytes.Buffer
	if err := run(&buf, "", 1, 10, "adams-gear", 1e-8, 1e-11, []string{model}, telemetry.CLI{}); err == nil {
		t.Error("missing rcip accepted")
	}
	if err := run(&buf, rates, 1, 1, "adams-gear", 1e-8, 1e-11, []string{model}, telemetry.CLI{}); err == nil {
		t.Error("points < 2 accepted")
	}
	if err := run(&buf, rates, -1, 10, "adams-gear", 1e-8, 1e-11, []string{model}, telemetry.CLI{}); err == nil {
		t.Error("negative tend accepted")
	}
	if err := run(&buf, rates, 1, 10, "euler", 1e-8, 1e-11, []string{model}, telemetry.CLI{}); err == nil {
		t.Error("unknown solver accepted")
	}
	if err := run(&buf, rates, 1, 10, "adams-gear", 1e-8, 1e-11, nil, telemetry.CLI{}); err == nil {
		t.Error("no model accepted")
	}
}
