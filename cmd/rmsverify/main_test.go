package main

import (
	"strings"
	"testing"
)

func TestSmokeRunPasses(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-seed", "1", "-n", "3", "-size", "7", "-shrinkdir", t.TempDir()}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "PASS (") {
		t.Errorf("missing PASS line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "tape") {
		t.Errorf("missing stage table:\n%s", out.String())
	}
}

func TestStageSubsetAndMetrics(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-n", "2", "-size", "6", "-stages", "tape,parallel", "-metrics",
		"-shrinkdir", t.TempDir()}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if strings.Contains(out.String(), "newton") {
		t.Error("unselected stage ran")
	}
	if !strings.Contains(out.String(), "conformance.tape.cases") {
		t.Errorf("-metrics output missing:\n%s", out.String())
	}
}

func TestUnknownStageFails(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-stages", "bogus"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown stage") {
		t.Errorf("stderr:\n%s", errb.String())
	}
}

func TestListStages(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, name := range []string{"simplify", "ccomp", "estimator", "rdl"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list missing %s:\n%s", name, out.String())
		}
	}
}
