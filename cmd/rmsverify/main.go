// Command rmsverify runs the cross-stack conformance matrix: seeded
// random models pushed through every optimization layer, each stage
// boundary checked differentially against the unoptimized reference
// interpreter, plus the metamorphic properties that need no oracle
// (permutation invariance, rate rescaling, conservation laws).
//
// Usage:
//
//	rmsverify -seed 1 -n 25            # the CI acceptance run
//	rmsverify -n 500 -size 30          # a soak run
//	rmsverify -stages tape,ccomp -v    # one layer, per-case logging
//	rmsverify -list                    # show the stage matrix
//
// Failing cases shrink automatically to minimal reproducers written
// under -shrinkdir (default testdata/, created on demand); the exit
// status is 1 when any stage diverges. -metrics prints the telemetry
// registry (per-stage case/check/failure counters and max-ulp gauges)
// after the run. -listen serves the live introspection endpoints while
// the matrix runs. On failure, the full /debug/vars snapshot is also
// written (checkpoint-enveloped, content-hashed) next to the shrunken
// reproducers, so a failure report carries its telemetry with it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"rms/internal/conformance"
	"rms/internal/introspect"
	"rms/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rmsverify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "base seed for the model generator")
	n := fs.Int("n", 25, "number of random models")
	size := fs.Int("size", 10, "nominal species count (cases vary around it)")
	stages := fs.String("stages", "all", "comma-separated stage subset (see -list)")
	tol := fs.Float64("tol", 0, "relative tolerance for tree-rewrite comparisons (0 = default)")
	shrinkDir := fs.String("shrinkdir", "testdata", "directory for shrunken reproducers (\"\" disables)")
	verbose := fs.Bool("v", false, "log each case and failure")
	metrics := fs.Bool("metrics", false, "print the telemetry registry after the run")
	listen := fs.String("listen", "", "serve the live introspection endpoints on this address")
	list := fs.Bool("list", false, "list the stage matrix and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, st := range conformance.Stages {
			fmt.Fprintf(stdout, "%-10s %s\n", st.Name, st.Desc)
		}
		return 0
	}

	reg := telemetry.NewRegistry()
	srv := &introspect.Server{Program: "rmsverify", Registry: reg,
		Recorder: telemetry.NewRecorder(telemetry.DefaultRecorderSize)}
	if *listen != "" {
		addr, err := srv.Start(*listen)
		if err != nil {
			fmt.Fprintf(stderr, "rmsverify: %v\n", err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "rmsverify: introspection on http://%s\n", addr)
	}
	cfg := conformance.Config{
		Seed: *seed, N: *n, Size: *size, Stages: *stages, Tol: *tol,
		Registry: reg, ShrinkDir: *shrinkDir,
	}
	if *verbose {
		cfg.Log = stderr
	}
	fmt.Fprintf(stdout, "rmsverify: seed=%d n=%d size=%d stages=%s\n", *seed, *n, *size, *stages)
	sum, err := conformance.Run(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "rmsverify: %v\n", err)
		return 2
	}

	fmt.Fprintf(stdout, "%-10s %6s %6s %8s %10s %10s\n",
		"stage", "cases", "fail", "checks", "max_ulp", "max_rel")
	for _, st := range sum.Stages {
		fmt.Fprintf(stdout, "%-10s %6d %6d %8d %10.3g %10.3g\n",
			st.Name, st.Cases, st.Failures, st.Checks, st.MaxULP, st.MaxRel)
	}
	if *metrics {
		reg.WriteText(stdout)
	}
	if !sum.OK() {
		for _, st := range sum.Stages {
			if st.Failures == 0 {
				continue
			}
			fmt.Fprintf(stderr, "FAIL %s: %s\n", st.Name, st.FirstFailure)
			if st.Reproducer != "" {
				fmt.Fprintf(stderr, "     reproducer (%d species): %s\n",
					st.ReproducerSpecies, st.Reproducer)
			}
		}
		// Attach the full telemetry state to the failure report: the
		// /debug/vars snapshot round-trips through the checkpoint envelope
		// (versioned, sha256 content hash, canonical field order), so a
		// reproducer directory carries exactly what the run measured.
		if *shrinkDir != "" {
			if data, err := introspect.MarshalVars(srv.Vars()); err == nil {
				path := filepath.Join(*shrinkDir, "rmsverify_vars.json")
				if os.MkdirAll(*shrinkDir, 0o755) == nil &&
					os.WriteFile(path, data, 0o644) == nil {
					fmt.Fprintf(stderr, "     telemetry snapshot: %s\n", path)
				}
			}
		}
		fmt.Fprintf(stdout, "FAIL (%d stages, %d models, %d failing cases)\n",
			len(sum.Stages), sum.Models, sum.Failures())
		return 1
	}
	fmt.Fprintf(stdout, "PASS (%d stages, %d models, 0 failures)\n", len(sum.Stages), sum.Models)
	return 0
}
