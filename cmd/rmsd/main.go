// Command rmsd is the Reaction Modeling Suite daemon: compile once,
// serve millions. It exposes the pipeline as a JSON HTTP API over a
// content-addressed compiled-model cache — identical RDL source and
// optimization flags compile exactly once, then any number of simulate
// and fit requests reuse the cached tape, sparsity pattern and symbolic
// LU factorization.
//
// Usage:
//
//	rmsd -listen 127.0.0.1:8631
//
//	POST /v1/models          compile a model spec (cache-addressed)
//	GET  /v1/models/{id}     cached model summary
//	POST /v1/simulate        integrate a trajectory
//	POST /v1/fit             fit rate constants to data
//	POST /v1/verify          cross-check cached vs fresh compilation
//	GET  /v1/jobs/{id}       poll a job (?wait=1 blocks)
//	GET  /v1/jobs/{id}/events  ndjson progress stream
//
// All POST endpoints queue a job and return 202 with its id; append
// ?wait=1 to block for the result. A full queue answers 429 with
// Retry-After; a draining server 503. The introspection endpoints
// (/healthz, /metrics, /debug/vars, /debug/events, /progress) are
// mounted on the same listener. See docs/service.md.
//
// Flags:
//
//	-listen addr   bind address (default 127.0.0.1:0 — a free port,
//	               printed on stderr as "rmsd: serving on http://ADDR")
//	-queue N       admission queue capacity (default 16)
//	-workers N     concurrent job executors (default 2)
//	-drain d       graceful-shutdown drain deadline (default 5s)
//	-ckptdir dir   write per-job fit checkpoints here (resumable)
//	-trace/-metrics/-pprof/-cpuprofile/-log/-logjson as in rmsrun
//
// SIGINT/SIGTERM drain gracefully: no new jobs are admitted, in-flight
// jobs get -drain to finish, then their budgets are cancelled — fits
// stop at an iteration boundary with their checkpoint intact.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rms/internal/budget"
	"rms/internal/checkpoint"
	"rms/internal/service"
	"rms/internal/telemetry"
)

// daemonOpts bundles the rmsd configuration; the injectable interrupt
// channel and ready callback are the test hooks.
type daemonOpts struct {
	listen        string
	queueCap      int
	workers       int
	drain         time.Duration
	checkpointDir string
	obs           telemetry.CLI
	// interrupt delivers shutdown signals (or, in tests, a synthetic
	// one).
	interrupt <-chan os.Signal
	// ready, when non-nil, receives the bound address once the server
	// is listening.
	ready chan<- string
}

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:0", "bind address (port 0 picks a free port)")
		queue   = flag.Int("queue", 16, "admission queue capacity")
		workers = flag.Int("workers", 2, "concurrent job executors")
		drain   = flag.Duration("drain", 5*time.Second, "graceful-shutdown drain deadline")
		ckptDir = flag.String("ckptdir", "", "write per-job fit checkpoints into this directory")
		trace   = flag.String("trace", "", "write a Chrome trace-event file on exit")
		metrics = flag.Bool("metrics", false, "print the telemetry registry on exit")
		pprof   = flag.String("pprof", "", "serve net/http/pprof on this address")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		logLvl  = flag.String("log", "", "echo structured events at or above this level (debug|info|warn|error) to stderr")
		logJSON = flag.Bool("logjson", false, "emit log lines as JSON instead of text")
	)
	flag.Parse()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	o := daemonOpts{
		listen: *listen, queueCap: *queue, workers: *workers,
		drain: *drain, checkpointDir: *ckptDir,
		obs: telemetry.CLI{TracePath: *trace, Metrics: *metrics, PprofAddr: *pprof,
			CPUProfile: *cpuProf, Out: os.Stderr,
			// Listen arms the live registry; the service mounts the
			// introspection endpoints on its own mux.
			Listen: *listen, LogLevel: *logLvl, LogJSON: *logJSON},
		interrupt: sig,
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "rmsd:", err)
		os.Exit(1)
	}
}

func run(o daemonOpts) error {
	ins, finish, err := o.obs.Setup()
	if err != nil {
		return err
	}
	checkpoint.SetLogger(ins.Log.Scope("checkpoint"))
	bud := budget.New().WithLogger(ins.Log.Scope("budget"))
	defer bud.Cancel("server exit")

	if o.checkpointDir != "" {
		if err := os.MkdirAll(o.checkpointDir, 0o755); err != nil {
			return err
		}
	}
	srv := service.New(service.Config{
		Program:       "rmsd",
		QueueCap:      o.queueCap,
		Workers:       o.workers,
		Drain:         o.drain,
		CheckpointDir: o.checkpointDir,
		Registry:      ins.Registry,
		Tracer:        ins.Tracer,
		Recorder:      ins.Recorder,
		Log:           ins.Log,
		Budget:        bud,
	})
	addr, err := srv.Start(o.listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rmsd: serving on http://%s\n", addr)
	if o.ready != nil {
		o.ready <- addr
	}

	<-o.interrupt
	fmt.Fprintf(os.Stderr, "rmsd: shutdown — draining for up to %s\n", o.drain)
	if clean := srv.Shutdown(o.drain); !clean {
		fmt.Fprintln(os.Stderr, "rmsd: drain deadline hit — unfinished jobs cancelled (fit checkpoints kept)")
	}
	return finish()
}
