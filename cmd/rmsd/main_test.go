package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rms/internal/service"
)

const daemonModel = `
species A = "[CH3:1][CH3:2]" init 1.0
reaction Decompose {
    reactants A
    disconnect 1:1 1:2
    rate K_d
}
`

// startDaemon runs the daemon with test hooks and returns its base URL
// plus a shutdown function that triggers the interrupt path and waits
// for a clean exit.
func startDaemon(t *testing.T, o daemonOpts) (base string, shutdown func()) {
	t.Helper()
	sig := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	o.interrupt = sig
	o.ready = ready
	errc := make(chan error, 1)
	go func() { errc <- run(o) }()
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	return base, func() {
		sig <- os.Interrupt
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("daemon exited with error: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}
}

func postWait(t *testing.T, base, path string, body any) (int, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+path+"?wait=1", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out.Bytes()
}

func TestDaemonLifecycle(t *testing.T) {
	base, shutdown := startDaemon(t, daemonOpts{
		listen: "127.0.0.1:0", queueCap: 4, workers: 1,
		drain: 5 * time.Second, checkpointDir: filepath.Join(t.TempDir(), "ckpt"),
	})

	// Readiness: the introspection endpoints live on the same mux.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}

	spec := service.ModelSpec{Kind: service.KindRDL, Source: daemonModel, RCIP: "K_d = 2"}
	code, body := postWait(t, base, "/v1/models", spec)
	if code != http.StatusOK {
		t.Fatalf("compile = %d: %s", code, body)
	}
	var jv struct {
		Status string          `json:"status"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(body, &jv); err != nil {
		t.Fatal(err)
	}
	if jv.Status != "done" {
		t.Fatalf("compile status = %s: %s", jv.Status, body)
	}
	var info service.ModelInfo
	if err := json.Unmarshal(jv.Result, &info); err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.Cached {
		t.Fatalf("first compile: %+v", info)
	}

	// A simulate against the cached id round-trips through the queue.
	code, body = postWait(t, base, "/v1/simulate", service.SimulateRequest{
		Model: info.ID, TEnd: 1, Points: 5,
	})
	if code != http.StatusOK {
		t.Fatalf("simulate = %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &jv); err != nil || jv.Status != "done" {
		t.Fatalf("simulate status: %s (err %v)", body, err)
	}
	var sim service.SimulateResult
	if err := json.Unmarshal(jv.Result, &sim); err != nil {
		t.Fatal(err)
	}
	if len(sim.Rows) != 5 {
		t.Fatalf("rows = %d", len(sim.Rows))
	}

	shutdown()

	// The listener is down after shutdown.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("healthz still answering after shutdown")
	}
}

func TestDaemonServesOnStderrAddr(t *testing.T) {
	// The "serving on" line goes to stderr; the ready hook carries the
	// same address. Sanity-check the address is dialable HTTP.
	base, shutdown := startDaemon(t, daemonOpts{
		listen: "127.0.0.1:0", queueCap: 2, workers: 1, drain: time.Second,
	})
	defer shutdown()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
}

func TestDaemonDrainCancelsInFlight(t *testing.T) {
	ckptDir := t.TempDir()
	base, shutdown := startDaemon(t, daemonOpts{
		listen: "127.0.0.1:0", queueCap: 4, workers: 1,
		// A short drain: the long fit below cannot finish inside it, so
		// shutdown must cancel its budget and still exit promptly.
		drain: 200 * time.Millisecond, checkpointDir: ckptDir,
	})

	spec := service.ModelSpec{Kind: service.KindVulcan, Variants: 9}
	code, body := postWait(t, base, "/v1/models", spec)
	if code != http.StatusOK {
		t.Fatalf("compile = %d: %s", code, body)
	}
	var jv struct {
		Status string          `json:"status"`
		Error  string          `json:"error"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(body, &jv); err != nil {
		t.Fatal(err)
	}
	if jv.Status != "done" {
		t.Fatalf("compile %s: %s", jv.Status, jv.Error)
	}
	var info service.ModelInfo
	if err := json.Unmarshal(jv.Result, &info); err != nil {
		t.Fatal(err)
	}

	// Queue a fit without waiting, then shut down while it runs.
	req := fitRequestForModel(info)
	buf, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/fit", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fit submit = %d", resp.StatusCode)
	}
	time.Sleep(50 * time.Millisecond) // let the worker pick it up
	start := time.Now()
	shutdown()
	if d := time.Since(start); d > 8*time.Second {
		t.Fatalf("shutdown took %s; drain deadline not enforced", d)
	}
}

// fitRequestForModel builds a deliberately slow synthetic fit: tiny
// tolerances and many iterations against fabricated data.
func fitRequestForModel(info service.ModelInfo) service.FitRequest {
	n := len(info.Rates)
	start := make([]float64, n)
	lower := make([]float64, n)
	upper := make([]float64, n)
	for i := range start {
		start[i], lower[i], upper[i] = 1, 0.1, 10
	}
	var files []service.DataFile
	for f := 0; f < 4; f++ {
		df := service.DataFile{Name: fmt.Sprintf("synth%d", f)}
		for i := 0; i < 40; i++ {
			df.T = append(df.T, 0.01*float64(i+1))
			df.V = append(df.V, 0.1*float64(i))
		}
		files = append(files, df)
	}
	return service.FitRequest{
		Model: info.ID, Data: files, Property: "sum",
		RTol: 1e-10, ATol: 1e-13, MaxIter: 500, Tol: 1e-14, RelStep: 1e-4,
		Start: start, Lower: lower, Upper: upper,
	}
}
