// Command rmsctl is the HTTP client for the rmsd daemon. Its output
// formats deliberately match the standalone CLIs so served and local
// results diff cleanly: `rmsctl simulate` emits the same CSV as
// rmssim, and `rmsctl fit` emits the same fitted-value table rows as
// rmsrun.
//
// Usage:
//
//	rmsctl -addr HOST:PORT compile  [-rcip f] [-optimize full] model.rdl
//	rmsctl -addr HOST:PORT compile  -variants 60
//	rmsctl -addr HOST:PORT simulate [-model ID | model.rdl] [-rcip f]
//	                                [-tend 1] [-points 100] [-solver s]
//	                                [-rtol 1e-8] [-atol 1e-11]
//	rmsctl -addr HOST:PORT fit      -variants 60 -data dir [-ranks 4]
//	                                [-lb] [-maxiter 30] [-free 3]
//	rmsctl -addr HOST:PORT verify   [-variants N | model.rdl] [-rcip f]
//
// compile prints "model ID (cached|compiled)"; a second identical
// compile returns the same content-addressed ID from the daemon's
// cache without recompiling.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rms/internal/dataset"
	"rms/internal/service"
	"rms/internal/vulcan"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rmsctl:", err)
		os.Exit(1)
	}
}

// client posts JSON jobs to one rmsd instance.
type client struct {
	base string
}

// jobView mirrors service.JobView with a raw result for re-decoding.
type jobView struct {
	ID     string          `json:"id"`
	Kind   string          `json:"kind"`
	Status string          `json:"status"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// post submits a job with ?wait=1 and decodes its result into out.
func (c *client) post(path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(c.base+path+"?wait=1", "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var ae struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &ae) == nil && ae.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, ae.Error)
		}
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	var jv jobView
	if err := json.Unmarshal(data, &jv); err != nil {
		return err
	}
	if jv.Status != "done" {
		return fmt.Errorf("job %s %s: %s", jv.ID, jv.Status, jv.Error)
	}
	return json.Unmarshal(jv.Result, out)
}

// spec assembles a ModelSpec from the shared flag triple.
func spec(kindHint string, variants int, rcipPath string, optimize string, args []string) (service.ModelSpec, error) {
	s := service.ModelSpec{Optimize: optimize}
	if variants > 0 {
		s.Kind = service.KindVulcan
		s.Variants = variants
		if len(args) != 0 {
			return s, fmt.Errorf("-variants and a model file are mutually exclusive")
		}
		return s, nil
	}
	if len(args) != 1 {
		return s, fmt.Errorf("expected one model file (or -variants N), got %d args", len(args))
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return s, err
	}
	s.Kind = kindHint
	if s.Kind == "" {
		s.Kind = service.KindRDL
		if strings.HasSuffix(args[0], ".net") {
			s.Kind = service.KindNet
		}
	}
	s.Source = string(src)
	if rcipPath != "" {
		b, err := os.ReadFile(rcipPath)
		if err != nil {
			return s, err
		}
		s.RCIP = string(b)
	}
	return s, nil
}

func run(w io.Writer, args []string) error {
	global := flag.NewFlagSet("rmsctl", flag.ContinueOnError)
	addr := global.String("addr", "", "rmsd address (HOST:PORT)")
	if err := global.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("-addr is required")
	}
	rest := global.Args()
	if len(rest) == 0 {
		return fmt.Errorf("expected a subcommand: compile | simulate | fit | verify")
	}
	c := &client{base: "http://" + *addr}
	switch rest[0] {
	case "compile":
		return cmdCompile(w, c, rest[1:])
	case "simulate":
		return cmdSimulate(w, c, rest[1:])
	case "fit":
		return cmdFit(w, c, rest[1:])
	case "verify":
		return cmdVerify(w, c, rest[1:])
	}
	return fmt.Errorf("unknown subcommand %q", rest[0])
}

func cmdCompile(w io.Writer, c *client, args []string) error {
	fs := flag.NewFlagSet("compile", flag.ContinueOnError)
	rcip := fs.String("rcip", "", "rate-constant information file")
	variants := fs.Int("variants", 0, "compile the built-in vulcanization model at this size")
	optimize := fs.String("optimize", "full", "optimizer configuration (full|paper|none)")
	kind := fs.String("kind", "", "source kind (rdl|net); inferred from the extension by default")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sp, err := spec(*kind, *variants, *rcip, *optimize, fs.Args())
	if err != nil {
		return err
	}
	var info service.ModelInfo
	if err := c.post("/v1/models", sp, &info); err != nil {
		return err
	}
	state := "compiled"
	if info.Cached {
		state = "cached"
	}
	fmt.Fprintf(w, "model %s (%s)\n", info.ID, state)
	return nil
}

func cmdSimulate(w io.Writer, c *client, args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	model := fs.String("model", "", "cached model ID (instead of a model file)")
	rcip := fs.String("rcip", "", "rate-constant information file")
	tEnd := fs.Float64("tend", 1, "integration horizon")
	points := fs.Int("points", 100, "number of output rows")
	solver := fs.String("solver", "adams-gear", "adams-gear | runge-kutta")
	rtol := fs.Float64("rtol", 1e-8, "relative tolerance")
	atol := fs.Float64("atol", 1e-11, "absolute tolerance")
	if err := fs.Parse(args); err != nil {
		return err
	}
	req := service.SimulateRequest{
		TEnd: *tEnd, Points: *points, Solver: *solver, RTol: *rtol, ATol: *atol,
	}
	if *model != "" {
		req.Model = *model
	} else {
		sp, err := spec("", 0, *rcip, "full", fs.Args())
		if err != nil {
			return err
		}
		req.Spec = &sp
	}
	var res service.SimulateResult
	if err := c.post("/v1/simulate", req, &res); err != nil {
		return err
	}
	// Identical CSV to rmssim: header then %.8g rows.
	fmt.Fprintf(w, "t,%s\n", strings.Join(res.Species, ","))
	for _, row := range res.Rows {
		fmt.Fprintf(w, "%.8g", row[0])
		for _, v := range row[1:] {
			fmt.Fprintf(w, ",%.8g", v)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func cmdFit(w io.Writer, c *client, args []string) error {
	fs := flag.NewFlagSet("fit", flag.ContinueOnError)
	variants := fs.Int("variants", 60, "chain-length variants per family")
	dataDir := fs.String("data", "rms-assets", "directory of experimental data files")
	ranks := fs.Int("ranks", 4, "number of simulated MPI ranks")
	lb := fs.Bool("lb", true, "enable dynamic load balancing")
	maxIter := fs.Int("maxiter", 30, "Levenberg-Marquardt iteration cap")
	free := fs.Int("free", 3, "number of rate constants left free to fit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths, err := filepath.Glob(filepath.Join(*dataDir, "exp*.dat"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no exp*.dat files in %s (run rmsgen first)", *dataDir)
	}
	sort.Strings(paths)
	var files []*dataset.File
	for _, p := range paths {
		f, err := dataset.ReadFile(p)
		if err != nil {
			return err
		}
		files = append(files, f)
	}
	sp := service.ModelSpec{Kind: service.KindVulcan, Variants: *variants}
	var info service.ModelInfo
	if err := c.post("/v1/models", sp, &info); err != nil {
		return err
	}
	// The same bound scheme as rmsrun: the first `free` constants float
	// within a decade of truth, the rest pin to it.
	n := len(info.Rates)
	lower := make([]float64, n)
	upper := make([]float64, n)
	start := make([]float64, n)
	for i, name := range info.Rates {
		truth := vulcan.TrueRates[name]
		if i < *free {
			lower[i], upper[i] = truth/10, truth*10
			start[i] = truth / 3
		} else {
			lower[i], upper[i], start[i] = truth, truth, truth
		}
	}
	req := service.FitRequest{
		Model: info.ID, Data: service.FromDataset(files),
		Property: "crosslink", RTol: 1e-9, ATol: 1e-12,
		Ranks: *ranks, LoadBalance: *lb,
		MaxIter: *maxIter, RelStep: 1e-4,
		Start: start, Lower: lower, Upper: upper,
	}
	var res service.FitResult
	if err := c.post("/v1/fit", req, &res); err != nil {
		return err
	}
	fmt.Fprintf(w, "converged=%v iterations=%d rnorm=%.3g objective calls=%d\n",
		res.Converged, res.Iterations, res.RNorm, res.Calls)
	// The same table rows as rmsrun (name + fitted value columns).
	fmt.Fprintln(w, "rate constant   fitted")
	for i, name := range res.Rates {
		fmt.Fprintf(w, "%-14s %8.4f\n", name, res.X[i])
	}
	return nil
}

func cmdVerify(w io.Writer, c *client, args []string) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	variants := fs.Int("variants", 0, "verify the built-in vulcanization model at this size")
	rcip := fs.String("rcip", "", "rate-constant information file")
	tEnd := fs.Float64("tend", 0.1, "verification horizon")
	points := fs.Int("points", 5, "verification rows")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sp, err := spec("", *variants, *rcip, "full", fs.Args())
	if err != nil {
		return err
	}
	req := service.VerifyRequest{Spec: sp, TEnd: *tEnd, Points: *points}
	if sp.Kind == service.KindVulcan {
		req.Rates = vulcan.TrueRates
	}
	var res service.VerifyResult
	if err := c.post("/v1/verify", req, &res); err != nil {
		return err
	}
	fmt.Fprintf(w, "model %s: ok=%v rows=%d checks=%d mismatches=%d\n",
		res.Model, res.OK, res.Rows, res.Checks, res.Mismatches)
	if !res.OK {
		return fmt.Errorf("cached and fresh compilations diverge")
	}
	return nil
}
