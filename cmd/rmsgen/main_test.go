package main

import (
	"os"
	"path/filepath"
	"testing"

	"rms/internal/dataset"
)

func TestGenerateAssets(t *testing.T) {
	dir := t.TempDir()
	if err := run(9, 3, 80, dir, 1.0); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"model_opt.c", "model_raw.c"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("%s missing: %v", name, err)
		}
	}
	paths, err := filepath.Glob(filepath.Join(dir, "exp*.dat"))
	if err != nil || len(paths) != 3 {
		t.Fatalf("data files = %d (%v), want 3", len(paths), err)
	}
	f, err := dataset.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRecords() < 32 {
		t.Errorf("records = %d", f.NumRecords())
	}
	// The property curve rises from zero: crosslinks accumulate.
	if f.Records[0].Value > f.Records[f.NumRecords()-1].Value {
		t.Error("crosslink curve not rising")
	}
}

func TestGenerateRejectsTinyModel(t *testing.T) {
	if err := run(2, 1, 50, t.TempDir(), 1.0); err == nil {
		t.Error("variants < 8 accepted")
	}
}
