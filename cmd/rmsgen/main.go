// Command rmsgen generates the benchmark assets of the paper's
// evaluation: a vulcanization test-case model of the requested size, its
// generated C code (optimized and unoptimized), and a set of synthetic
// experimental data files recording the crosslink-concentration evolution
// of the ground-truth model — the inputs the parameter estimator fits.
//
// Usage:
//
//	rmsgen -variants 60 -files 16 -out ./bench-assets
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rms/internal/codegen"
	"rms/internal/core"
	"rms/internal/dataset"
	"rms/internal/ode"
	"rms/internal/opt"
	"rms/internal/vulcan"
)

func main() {
	var (
		variants = flag.Int("variants", 60, "chain-length variants per family (>= 8)")
		nFiles   = flag.Int("files", 16, "number of experimental data files")
		records  = flag.Int("records", 3200, "records per data file (paper: >3000)")
		outDir   = flag.String("out", "rms-assets", "output directory")
		tEnd     = flag.Float64("tend", 2.0, "cure time window")
	)
	flag.Parse()
	if err := run(*variants, *nFiles, *records, *outDir, *tEnd); err != nil {
		fmt.Fprintln(os.Stderr, "rmsgen:", err)
		os.Exit(1)
	}
}

func run(variants, nFiles, records int, outDir string, tEnd float64) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	net, err := vulcan.Network(variants)
	if err != nil {
		return err
	}
	res, err := core.CompileNetwork(net, core.Config{Optimize: opt.Full()})
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(outDir, "model_opt.c"), []byte(res.C), 0o644); err != nil {
		return err
	}
	rawNet, err := vulcan.Network(variants)
	if err != nil {
		return err
	}
	rawRes, err := core.CompileNetwork(rawNet, core.Config{Optimize: opt.Options{}})
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(outDir, "model_raw.c"), []byte(rawRes.C), 0o644); err != nil {
		return err
	}
	fmt.Println(res.Report())

	// Solve the ground-truth model once and sample the crosslink curve.
	k, err := vulcan.RateVector(res.System.Rates, vulcan.TrueRates)
	if err != nil {
		return err
	}
	prop := vulcan.CrosslinkProperty(res.System)
	curve, err := sampleCurve(res.Tape, res.System.Y0, k, prop, tEnd, 512)
	if err != nil {
		return err
	}
	for i := 0; i < nFiles; i++ {
		// Record counts ramp across files so per-file solve costs differ —
		// the imbalance the dynamic load balancer exploits (§5.4).
		n := records/2 + (3*records*i)/(2*maxInt(nFiles-1, 1))
		if n < 64 {
			n = 64
		}
		f := dataset.Synthesize(curve, dataset.SynthesizeOptions{
			Name:    fmt.Sprintf("exp%02d.dat", i+1),
			Records: n,
			T0:      0, T1: tEnd,
			Noise: 1e-4,
			Seed:  int64(i + 1),
		})
		if err := f.WriteFile(filepath.Join(outDir, f.Name)); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d data files and 2 C files to %s\n", nFiles, outDir)
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// sampleCurve integrates the model once on a fine grid and returns an
// interpolating property function.
func sampleCurve(prog *codegen.Program, y0, k []float64,
	prop func([]float64) float64, tEnd float64, samples int) (dataset.PropertyFunc, error) {

	ev := prog.NewEvaluator()
	rhs := func(_ float64, y, dy []float64) { ev.Eval(y, k, dy) }
	solver := ode.NewBDF(rhs, len(y0), ode.Options{RTol: 1e-9, ATol: 1e-12})
	y := append([]float64(nil), y0...)
	ts := make([]float64, samples+1)
	vs := make([]float64, samples+1)
	vs[0] = prop(y)
	for i := 1; i <= samples; i++ {
		t0 := tEnd * float64(i-1) / float64(samples)
		t1 := tEnd * float64(i) / float64(samples)
		if err := solver.Integrate(t0, t1, y); err != nil {
			return nil, err
		}
		ts[i] = t1
		vs[i] = prop(y)
	}
	return func(t float64) float64 {
		if t <= 0 {
			return vs[0]
		}
		if t >= tEnd {
			return vs[samples]
		}
		x := t / tEnd * float64(samples)
		i := int(x)
		frac := x - float64(i)
		return vs[i]*(1-frac) + vs[i+1]*frac
	}, nil
}
