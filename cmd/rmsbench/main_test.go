package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestJSONSparse checks the -json document for a structural bench: valid
// JSON on the writer, with the dense/sparse op-count fields present.
func TestJSONSparse(t *testing.T) {
	var out bytes.Buffer
	cfg := benchConfig{sparse: true, variants: 24, evalMs: 10, jsonOut: true}
	if err := run(&out, cfg); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Sparse []struct {
			Equations       int
			Speedup         float64
			DenseFactorOps  float64
			SparseFactorOps float64
			SolveMatch      bool
		}
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(rep.Sparse) != 1 {
		t.Fatalf("sparse rows = %d, want 1", len(rep.Sparse))
	}
	r := rep.Sparse[0]
	if r.Equations <= 0 || !r.SolveMatch {
		t.Errorf("bad row: %+v", r)
	}
	if r.DenseFactorOps <= r.SparseFactorOps {
		t.Errorf("dense factor ops %g not above sparse %g", r.DenseFactorOps, r.SparseFactorOps)
	}
}

// TestJSONFaults checks that an estimator-driven bench carries a
// telemetry snapshot in its -json document.
func TestJSONFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full fault-tolerance bench")
	}
	var out bytes.Buffer
	cfg := benchConfig{faults: true, jsonOut: true}
	if err := run(&out, cfg); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Faults []struct {
			Scenario string
		}
		Metrics []struct {
			Name  string
			Kind  string
			Count int64
		}
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if len(rep.Faults) == 0 {
		t.Fatal("no fault scenarios in report")
	}
	names := map[string]bool{}
	for _, m := range rep.Metrics {
		names[m.Name] = true
	}
	for _, want := range []string{"estimator.objective_calls", "ode.steps", "faults.retries"} {
		if !names[want] {
			t.Errorf("metrics snapshot lacks %q (have %d metrics)", want, len(rep.Metrics))
		}
	}
}
