// Command rmsbench regenerates the paper's evaluation tables.
//
// Usage:
//
//	rmsbench -table 1            # Table 1, scaled sizes with timing
//	rmsbench -table 1 -full      # Table 1, paper-scale op counts (slow)
//	rmsbench -table 2            # Table 2, parallel speedup sweep
//	rmsbench -table 2 -workers 8 # Table 2 with 8-wide per-rank pools
//	rmsbench -parallel           # serial vs levelized-parallel RHS eval
//	rmsbench -sparse             # dense vs sparse Jacobian build+factor
//	rmsbench -sparse -variants 1000  # same, one custom system size
//	rmsbench -ablate             # optimizer-pass ablation study
//	rmsbench -sweep              # workload-redundancy sensitivity sweep
//	rmsbench -faults             # recovery overhead under injected faults
//	rmsbench -faults -rate 0.2   # same, with 20% transient solve failures
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rms/internal/bench"
)

func main() {
	var (
		table    = flag.Int("table", 0, "which table to regenerate (1 or 2)")
		full     = flag.Bool("full", false, "table 1: paper-scale sizes (static counts only)")
		ablate   = flag.Bool("ablate", false, "run the optimizer ablation study")
		sweep    = flag.Bool("sweep", false, "run the workload-redundancy sensitivity sweep")
		parallel = flag.Bool("parallel", false, "compare serial vs levelized-parallel tape evaluation")
		sparse   = flag.Bool("sparse", false, "compare dense vs sparse Jacobian build + factorization")
		faults   = flag.Bool("faults", false, "measure fault-tolerance recovery overhead under injected failures")
		rate     = flag.Float64("rate", 0, "-faults: transient per-file-solve failure rate (0 = default 0.05)")
		workers  = flag.Int("workers", 0, "max worker-pool width (-parallel sweeps 2..workers, default 8; -table 2 pools each rank, default off)")
		variants = flag.Int("variants", 0, "-parallel/-sparse: system size (0 = defaults)")
		evalMs   = flag.Int("evalms", 300, "milliseconds of timing per configuration")
	)
	flag.Parse()
	if err := run(*table, *full, *ablate, *sweep, *parallel, *sparse, *faults, *rate, *workers, *variants, *evalMs); err != nil {
		fmt.Fprintln(os.Stderr, "rmsbench:", err)
		os.Exit(1)
	}
}

func run(table int, full, ablate, sweep, parallel, sparse, injectFaults bool, rate float64, workers, variants, evalMs int) error {
	did := false
	if table == 1 {
		did = true
		rows, err := bench.Table1(bench.Table1Config{
			Paper:       full,
			MinEvalTime: time.Duration(evalMs) * time.Millisecond,
		})
		if err != nil {
			return err
		}
		fmt.Println("Table 1 — optimization combinations across the five vulcanization test cases")
		if full {
			fmt.Println("(paper-scale sizes; static op counts, no timing)")
		} else {
			fmt.Println("(scaled sizes; xlc columns model the 4.5 GB thin node at paper scale)")
		}
		fmt.Print(bench.FormatTable1(rows))
	}
	if table == 2 {
		did = true
		cfg := bench.Table2Config{}
		if workers > 1 {
			cfg.Workers = workers
		}
		rows, err := bench.Table2(cfg)
		if err != nil {
			return err
		}
		fmt.Println("Table 2 — parallel objective over 16 data files (modeled parallel seconds)")
		fmt.Print(bench.FormatTable2(rows))
	}
	if parallel {
		did = true
		if workers == 0 {
			workers = 8
		}
		rows, err := bench.ParallelEval(bench.ParallelConfig{
			Variants:    variants,
			Workers:     workerSweep(workers),
			MinEvalTime: time.Duration(evalMs) * time.Millisecond,
		})
		if err != nil {
			return err
		}
		fmt.Println("Levelized parallel tape evaluation vs the serial interpreter")
		fmt.Print(bench.FormatParallel(rows))
	}
	if sparse {
		did = true
		cfg := bench.SparseConfig{}
		if variants > 0 {
			cfg.Variants = []int{variants}
		}
		rows, err := bench.SparseCompare(cfg)
		if err != nil {
			return err
		}
		fmt.Println("Dense vs sparse analytical Jacobian: build + factorization of the Newton iteration matrix")
		fmt.Print(bench.FormatSparse(rows))
	}
	if injectFaults {
		did = true
		cfg := bench.FaultsConfig{Rate: rate}
		if variants > 0 {
			cfg.Variants = variants
		}
		rows, err := bench.FaultTolerance(cfg)
		if err != nil {
			return err
		}
		fmt.Println("Fault-tolerance recovery overhead (parallel objective, injected failures)")
		fmt.Print(bench.FormatFaults(rows))
	}
	if ablate {
		did = true
		if err := runAblation(); err != nil {
			return err
		}
	}
	if sweep {
		did = true
		rows, err := bench.RedundancySweep(128, nil)
		if err != nil {
			return err
		}
		fmt.Println("Workload-redundancy sweep (128-variant case, equivalent-site multiplicity scaled)")
		fmt.Print(bench.FormatSweep(rows))
	}
	if !did {
		flag.Usage()
	}
	return nil
}

// workerSweep lists pool widths doubling from 2 up to max.
func workerSweep(max int) []int {
	if max < 2 {
		max = 2
	}
	var ws []int
	for w := 2; w < max; w *= 2 {
		ws = append(ws, w)
	}
	return append(ws, max)
}

// runAblation reports the op counts of every optimizer pass combination
// on one mid-size test case, quantifying each pass's contribution.
func runAblation() error {
	const variants = 256
	rows, rawM, rawA, err := bench.Ablation(variants)
	if err != nil {
		return err
	}
	fmt.Printf("Ablation on the %d-variant vulcanization case\n", variants)
	fmt.Print(bench.FormatAblation(rows, rawM, rawA))
	return nil
}
