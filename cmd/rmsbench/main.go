// Command rmsbench regenerates the paper's evaluation tables.
//
// Usage:
//
//	rmsbench -table 1            # Table 1, scaled sizes with timing
//	rmsbench -table 1 -full      # Table 1, paper-scale op counts (slow)
//	rmsbench -table 2            # Table 2, parallel speedup sweep
//	rmsbench -table 2 -workers 8 # Table 2 with 8-wide per-rank pools
//	rmsbench -parallel           # serial vs levelized-parallel RHS eval
//	rmsbench -batch              # serial vs batched SoA RHS eval sweep
//	rmsbench -batch -workers 4   # same, with a lane-partitioning pool
//	rmsbench -sparse             # dense vs sparse Jacobian build+factor
//	rmsbench -sparse -variants 1000  # same, one custom system size
//	rmsbench -ablate             # optimizer-pass ablation study
//	rmsbench -sweep              # workload-redundancy sensitivity sweep
//	rmsbench -faults             # recovery overhead under injected faults
//	rmsbench -faults -rate 0.2   # same, with 20% transient solve failures
//	rmsbench -skew               # scheduler scaling on skewed workloads
//	rmsbench -skew -ranks 8      # same, 8 ranks (x lanes = workers)
//
// Output and observability:
//
//	-json         emit the selected results as one JSON document on
//	              stdout (for per-PR BENCH_*.json trajectory files);
//	              includes a telemetry snapshot for the estimator-driven
//	              benches, and moves human-readable summaries to stderr
//	-trace f, -metrics, -pprof addr, -cpuprofile f
//	-listen addr  serve the live introspection endpoints while benches run
//	-log level    mirror flight-recorder events at this level to stderr
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"rms/internal/bench"
	"rms/internal/introspect"
	"rms/internal/telemetry"
)

// benchConfig selects which benches run and how they report.
type benchConfig struct {
	table                                                      int
	full, ablate, sweep, parallel, batch, sparse, faults, skew bool
	rate                                                       float64
	workers, variants, evalMs, ranks, lanes                    int
	jsonOut                                                    bool
	obs                                                        telemetry.CLI
}

// report is the -json document: one optional section per bench, plus the
// telemetry snapshot accumulated by the estimator-driven benches.
type report struct {
	Table1   []bench.Table1Row       `json:"table1,omitempty"`
	Table2   []bench.Table2Row       `json:"table2,omitempty"`
	Parallel []bench.ParallelRow     `json:"parallel,omitempty"`
	Batch    []bench.BatchRow        `json:"batch,omitempty"`
	Sparse   []bench.SparseRow       `json:"sparse,omitempty"`
	Faults   []bench.FaultsRow       `json:"faults,omitempty"`
	Skew     []bench.SkewRow         `json:"skew,omitempty"`
	Ablation *ablationReport         `json:"ablation,omitempty"`
	Sweep    []bench.SweepRow        `json:"sweep,omitempty"`
	Metrics  []telemetry.MetricValue `json:"metrics,omitempty"`
}

type ablationReport struct {
	Variants int                 `json:"variants"`
	RawMuls  int                 `json:"rawMuls,omitempty"`
	RawAdds  int                 `json:"rawAdds,omitempty"`
	Rows     []bench.AblationRow `json:"rows"`
}

func main() {
	var cfg benchConfig
	var trace, pprof, cpuProf, listen, logLvl string
	var metrics, logJSON bool
	flag.IntVar(&cfg.table, "table", 0, "which table to regenerate (1 or 2)")
	flag.BoolVar(&cfg.full, "full", false, "table 1: paper-scale sizes (static counts only)")
	flag.BoolVar(&cfg.ablate, "ablate", false, "run the optimizer ablation study")
	flag.BoolVar(&cfg.sweep, "sweep", false, "run the workload-redundancy sensitivity sweep")
	flag.BoolVar(&cfg.parallel, "parallel", false, "compare serial vs levelized-parallel tape evaluation")
	flag.BoolVar(&cfg.batch, "batch", false, "compare serial vs batched SoA tape evaluation across batch widths")
	flag.BoolVar(&cfg.sparse, "sparse", false, "compare dense vs sparse Jacobian build + factorization")
	flag.BoolVar(&cfg.faults, "faults", false, "measure fault-tolerance recovery overhead under injected failures")
	flag.Float64Var(&cfg.rate, "rate", 0, "-faults: transient per-file-solve failure rate (0 = default 0.05)")
	flag.BoolVar(&cfg.skew, "skew", false, "measure scheduler scaling on skewed workloads (static vs lpt vs sched)")
	flag.IntVar(&cfg.ranks, "ranks", 0, "-skew: simulated rank count (0 = default 4)")
	flag.IntVar(&cfg.lanes, "lanes", 0, "-skew: work-stealing lanes per rank (0 = default 2)")
	flag.IntVar(&cfg.workers, "workers", 0, "max worker-pool width (-parallel sweeps 2..workers, default 8; -table 2 pools each rank, default off)")
	flag.IntVar(&cfg.variants, "variants", 0, "-parallel/-sparse: system size (0 = defaults)")
	flag.IntVar(&cfg.evalMs, "evalms", 300, "milliseconds of timing per configuration")
	flag.BoolVar(&cfg.jsonOut, "json", false, "emit machine-readable JSON results on stdout")
	flag.StringVar(&trace, "trace", "", "write a Chrome trace-event file of the estimator-driven benches")
	flag.BoolVar(&metrics, "metrics", false, "print the telemetry metrics registry after the run")
	flag.StringVar(&pprof, "pprof", "", "serve net/http/pprof on this address")
	flag.StringVar(&cpuProf, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&listen, "listen", "", "serve the live introspection endpoints on this address")
	flag.StringVar(&logLvl, "log", "", "mirror flight-recorder events at this level (debug|info|warn|error) to stderr")
	flag.BoolVar(&logJSON, "logjson", false, "sink mirrored events as JSON lines")
	flag.Parse()
	cfg.obs = telemetry.CLI{TracePath: trace, Metrics: metrics, PprofAddr: pprof,
		CPUProfile: cpuProf, Listen: listen, LogLevel: logLvl, LogJSON: logJSON}
	if cfg.jsonOut {
		cfg.obs.Out = os.Stderr // keep stdout clean JSON
	}
	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "rmsbench:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, cfg benchConfig) error {
	ins, finish, err := cfg.obs.Setup()
	if err != nil {
		return err
	}
	reg := ins.Registry
	if cfg.jsonOut && reg == nil {
		// -json always carries a telemetry snapshot of the
		// estimator-driven benches, even without -metrics.
		reg = telemetry.NewRegistry()
	}
	if cfg.obs.Listen != "" {
		srv := &introspect.Server{Program: "rmsbench", Registry: reg,
			Tracer: ins.Tracer, Recorder: ins.Recorder}
		addr, err := srv.Start(cfg.obs.Listen)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "rmsbench: introspection on http://%s\n", addr)
	}
	// Human-readable tables go to stdout normally, stderr under -json.
	text := w
	if cfg.jsonOut {
		text = os.Stderr
	}

	var rep report
	did := false
	if cfg.table == 1 {
		did = true
		rows, err := bench.Table1(bench.Table1Config{
			Paper:       cfg.full,
			MinEvalTime: time.Duration(cfg.evalMs) * time.Millisecond,
		})
		if err != nil {
			return err
		}
		rep.Table1 = rows
		fmt.Fprintln(text, "Table 1 — optimization combinations across the five vulcanization test cases")
		if cfg.full {
			fmt.Fprintln(text, "(paper-scale sizes; static op counts, no timing)")
		} else {
			fmt.Fprintln(text, "(scaled sizes; xlc columns model the 4.5 GB thin node at paper scale)")
		}
		fmt.Fprint(text, bench.FormatTable1(rows))
	}
	if cfg.table == 2 {
		did = true
		t2 := bench.Table2Config{Metrics: reg}
		if cfg.workers > 1 {
			t2.Workers = cfg.workers
		}
		rows, err := bench.Table2(t2)
		if err != nil {
			return err
		}
		rep.Table2 = rows
		fmt.Fprintln(text, "Table 2 — parallel objective over 16 data files (modeled parallel seconds)")
		fmt.Fprint(text, bench.FormatTable2(rows))
	}
	if cfg.parallel {
		did = true
		workers := cfg.workers
		if workers == 0 {
			workers = 8
		}
		rows, err := bench.ParallelEval(bench.ParallelConfig{
			Variants:    cfg.variants,
			Workers:     workerSweep(workers),
			MinEvalTime: time.Duration(cfg.evalMs) * time.Millisecond,
		})
		if err != nil {
			return err
		}
		rep.Parallel = rows
		fmt.Fprintln(text, "Levelized parallel tape evaluation vs the serial interpreter")
		fmt.Fprint(text, bench.FormatParallel(rows))
	}
	if cfg.batch {
		did = true
		rows, err := bench.BatchEval(bench.BatchConfig{
			Variants:    cfg.variants,
			Workers:     cfg.workers,
			MinEvalTime: time.Duration(cfg.evalMs) * time.Millisecond,
		})
		if err != nil {
			return err
		}
		rep.Batch = rows
		fmt.Fprintln(text, "Batched SoA tape evaluation vs the serial interpreter (per-state throughput)")
		fmt.Fprint(text, bench.FormatBatch(rows))
	}
	if cfg.sparse {
		did = true
		sc := bench.SparseConfig{}
		if cfg.variants > 0 {
			sc.Variants = []int{cfg.variants}
		}
		rows, err := bench.SparseCompare(sc)
		if err != nil {
			return err
		}
		rep.Sparse = rows
		fmt.Fprintln(text, "Dense vs sparse analytical Jacobian: build + factorization of the Newton iteration matrix")
		fmt.Fprint(text, bench.FormatSparse(rows))
	}
	if cfg.faults {
		did = true
		fc := bench.FaultsConfig{Rate: cfg.rate, Metrics: reg}
		if cfg.variants > 0 {
			fc.Variants = cfg.variants
		}
		rows, err := bench.FaultTolerance(fc)
		if err != nil {
			return err
		}
		rep.Faults = rows
		fmt.Fprintln(text, "Fault-tolerance recovery overhead (parallel objective, injected failures)")
		fmt.Fprint(text, bench.FormatFaults(rows))
	}
	if cfg.skew {
		did = true
		sk := bench.SkewConfig{Ranks: cfg.ranks, Lanes: cfg.lanes, Metrics: reg}
		if cfg.variants > 0 {
			sk.Variants = cfg.variants
		}
		rows, err := bench.Skew(sk)
		if err != nil {
			return err
		}
		rep.Skew = rows
		fmt.Fprintln(text, "Scheduler scaling on skewed workloads (v2 cost model + work stealing vs static plan)")
		fmt.Fprint(text, bench.FormatSkew(rows))
	}
	if cfg.ablate {
		did = true
		ab, err := runAblation(text)
		if err != nil {
			return err
		}
		rep.Ablation = ab
	}
	if cfg.sweep {
		did = true
		rows, err := bench.RedundancySweep(128, nil)
		if err != nil {
			return err
		}
		rep.Sweep = rows
		fmt.Fprintln(text, "Workload-redundancy sweep (128-variant case, equivalent-site multiplicity scaled)")
		fmt.Fprint(text, bench.FormatSweep(rows))
	}
	if !did {
		flag.Usage()
		return nil
	}
	if cfg.jsonOut {
		rep.Metrics = reg.Snapshot()
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&rep); err != nil {
			return err
		}
	}
	return finish()
}

// workerSweep lists pool widths doubling from 2 up to max.
func workerSweep(max int) []int {
	if max < 2 {
		max = 2
	}
	var ws []int
	for w := 2; w < max; w *= 2 {
		ws = append(ws, w)
	}
	return append(ws, max)
}

// runAblation reports the op counts of every optimizer pass combination
// on one mid-size test case, quantifying each pass's contribution.
func runAblation(text io.Writer) (*ablationReport, error) {
	const variants = 256
	rows, rawM, rawA, err := bench.Ablation(variants)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(text, "Ablation on the %d-variant vulcanization case\n", variants)
	fmt.Fprint(text, bench.FormatAblation(rows, rawM, rawA))
	return &ablationReport{Variants: variants, RawMuls: rawM, RawAdds: rawA, Rows: rows}, nil
}
